//! Runtime log filtering.
//!
//! Static optimizations cannot remove every duplicate logging operation
//! (e.g. the same object re-read on different iterations of a loop over
//! a cyclic structure). The paper therefore adds a cheap *runtime*
//! filter: a small direct-mapped hash table, consulted before appending
//! a read-log or undo-log entry.
//!
//! The filter is *exact but lossy*: a slot stores the full key, so a hit
//! is always a true duplicate (never suppressing a first-time entry,
//! which would be unsound), while collisions simply evict the previous
//! key (allowing an occasional duplicate entry, which is benign).
//!
//! [`LogFilter::clear`] is O(1): each slot is stamped with the
//! generation in which it was written, and clearing just bumps the
//! current generation — a slot from an older generation reads as empty.
//! Without this, every transaction start (and every pooled reuse of a
//! filter) would pay a full-table write. The generation counter is 32
//! bits; on the (rare) wrap the table is zeroed for real, so a stale
//! slot can never alias a live generation.

/// What kind of log entry a key guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FilterKind {
    Read,
    Undo,
}

/// Direct-mapped duplicate-suppression table.
#[derive(Debug)]
pub(crate) struct LogFilter {
    /// Right-shift that keeps the top `bits` bits of the hash product
    /// (Fibonacci hashing must use the top bits: only they are affected
    /// by *every* key bit, including the kind tag in the high bits).
    shift: u32,
    slots: Box<[u64]>,
    /// Generation stamp of each slot; a slot counts as occupied only
    /// when its stamp equals [`LogFilter::generation`].
    stamps: Box<[u32]>,
    /// Current generation; never 0 (0 marks never-written slots).
    generation: u32,
    hits: u64,
    misses: u64,
}

impl LogFilter {
    /// Creates a filter with `2^bits` slots.
    pub(crate) fn new(bits: u32) -> LogFilter {
        let len = 1usize << bits;
        LogFilter {
            shift: 64 - bits,
            slots: vec![0; len].into_boxed_slice(),
            stamps: vec![0; len].into_boxed_slice(),
            generation: 1,
            hits: 0,
            misses: 0,
        }
    }

    /// log2 of the slot count (for pooled reuse: a recycled filter is
    /// only compatible with the same table size).
    pub(crate) fn bits(&self) -> u32 {
        64 - self.shift
    }

    fn key(kind: FilterKind, obj_raw: u32, field: u32) -> u64 {
        let kind_bits: u64 = match kind {
            FilterKind::Read => 1,
            FilterKind::Undo => 2,
        };
        debug_assert!(field < (1 << 22), "field index too large for filter key");
        (kind_bits << 54) | (u64::from(field) << 32) | u64::from(obj_raw)
    }

    /// Returns true if `(kind, obj, field)` was already recorded; records
    /// it otherwise.
    #[inline]
    pub(crate) fn check_and_set(&mut self, kind: FilterKind, obj_raw: u32, field: u32) -> bool {
        let key = Self::key(kind, obj_raw, field);
        // Fibonacci hashing; good dispersion for sequential slot indices.
        let slot = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize;
        if self.slots[slot] == key && self.stamps[slot] == self.generation {
            self.hits += 1;
            true
        } else {
            self.slots[slot] = key;
            self.stamps[slot] = self.generation;
            self.misses += 1;
            false
        }
    }

    /// Forgets everything (used at transaction start and after partial
    /// rollback, where stale "already logged" claims would be unsound).
    ///
    /// O(1): bumps the generation instead of zeroing the table. Only a
    /// generation wrap (once per 2³²−1 clears) pays a real fill, which
    /// keeps stale stamps from a previous epoch of the counter from
    /// masquerading as current.
    pub(crate) fn clear(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamps.fill(0);
            self.generation = 1;
        }
    }

    /// (hits, misses) since construction.
    #[cfg(test)]
    pub(crate) fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_occurrence_is_never_suppressed() {
        let mut f = LogFilter::new(4);
        assert!(!f.check_and_set(FilterKind::Read, 7, 0));
        assert!(!f.check_and_set(FilterKind::Undo, 7, 0));
        assert!(!f.check_and_set(FilterKind::Undo, 7, 1));
    }

    #[test]
    fn duplicates_are_suppressed() {
        let mut f = LogFilter::new(4);
        assert!(!f.check_and_set(FilterKind::Read, 7, 0));
        assert!(f.check_and_set(FilterKind::Read, 7, 0));
        assert!(f.check_and_set(FilterKind::Read, 7, 0));
        assert_eq!(f.counters(), (2, 1));
    }

    #[test]
    fn kinds_do_not_alias() {
        // A read record never makes the undo query claim "seen" and vice
        // versa; the most recent insert is always resident.
        let mut f = LogFilter::new(8);
        assert!(!f.check_and_set(FilterKind::Read, 7, 0));
        assert!(!f.check_and_set(FilterKind::Undo, 7, 0));
        assert!(f.check_and_set(FilterKind::Undo, 7, 0));
    }

    #[test]
    fn clear_forgets() {
        let mut f = LogFilter::new(4);
        assert!(!f.check_and_set(FilterKind::Read, 7, 0));
        f.clear();
        assert!(!f.check_and_set(FilterKind::Read, 7, 0));
        assert!(f.check_and_set(FilterKind::Read, 7, 0), "re-recorded after clear");
    }

    #[test]
    fn clear_is_generation_bump_not_table_write() {
        // Many clears interleaved with queries: every generation must be
        // isolated from every other, even though slots are never zeroed.
        let mut f = LogFilter::new(6);
        for round in 0..1_000u32 {
            assert!(!f.check_and_set(FilterKind::Read, round % 13, 0), "stale slot leaked");
            assert!(f.check_and_set(FilterKind::Read, round % 13, 0));
            f.clear();
        }
    }

    #[test]
    fn generation_wrap_zeroes_stamps() {
        let mut f = LogFilter::new(2);
        f.check_and_set(FilterKind::Read, 1, 0);
        // Force the wrap path directly.
        f.generation = u32::MAX;
        f.check_and_set(FilterKind::Read, 2, 0);
        f.clear();
        assert_eq!(f.generation, 1);
        assert!(!f.check_and_set(FilterKind::Read, 2, 0), "wrap must empty the table");
        assert!(!f.check_and_set(FilterKind::Read, 1, 0));
    }

    #[test]
    fn collisions_evict_but_never_lie() {
        // With a 1-bit filter (2 slots), hammer many distinct keys; the
        // filter may forget, but it must never claim an unseen key was
        // seen.
        let mut f = LogFilter::new(1);
        for obj in 0..100u32 {
            assert!(
                !f.check_and_set(FilterKind::Read, obj, 0),
                "filter invented a duplicate for fresh object {obj}"
            );
        }
    }

    #[test]
    fn dense_object_ids_spread_across_slots() {
        let mut f = LogFilter::new(8);
        let mut suppressed = 0;
        for obj in 0..128u32 {
            if f.check_and_set(FilterKind::Read, obj, 0) {
                suppressed += 1;
            }
        }
        assert_eq!(suppressed, 0);
        // Re-query: most should now hit (some evicted by collisions).
        let mut hits = 0;
        for obj in 0..128u32 {
            if f.check_and_set(FilterKind::Read, obj, 0) {
                hits += 1;
            }
        }
        assert!(hits > 64, "expected most re-queries to hit, got {hits}/128");
    }
}
