//! Deterministic fault injection for the STM's commit, abort, and
//! ownership-release paths.
//!
//! A [`Failpoints`] registry (owned by [`crate::Stm`]) maps *named
//! sites* — fixed strings compiled into the runtime, listed in
//! [`sites`] — to a [`FailAction`] guarded by a [`Trigger`]. Tests arm
//! a site, run a workload, and get reproducible faults at exactly the
//! configured operations:
//!
//! - [`FailAction::Abort`] injects an explicit abort at the site;
//! - [`FailAction::Delay`] spins a fixed number of iterations, widening
//!   race windows deterministically;
//! - [`FailAction::Kill`] simulates thread death *while holding
//!   ownership*: the transaction's undo log is parked in the registry
//!   and its ownership records stay in place until a concurrent
//!   transaction recovers the orphan.
//!
//! When no site is armed the whole layer costs one relaxed atomic load
//! per instrumented site — the registry starts disabled and every
//! `check` bails on the fast path.
//!
//! Probabilistic triggers draw from a private SplitMix64 stream seeded
//! explicitly, so a given `(seed, p)` fires at the same operation
//! indices on every run regardless of thread timing elsewhere.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

use omt_util::rng::StdRng;
use omt_util::sync::Mutex;

/// What an armed failpoint does when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Abort the current transaction (surfaces as an explicit-retry
    /// conflict, so retry loops handle it like any user abort).
    Abort,
    /// Spin for this many iterations, then continue normally. Widens
    /// race windows without changing semantics.
    Delay(u32),
    /// Simulate the owning thread dying at this point: the transaction
    /// stops executing, its logs are parked for recovery, and any
    /// ownership it holds is left in place.
    Kill,
}

/// When an armed failpoint fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire on every hit.
    Always,
    /// Fire on the first hit only, then disarm.
    Once,
    /// Fire on the `n`-th hit (1-based) only, then disarm.
    Nth(u64),
    /// Fire independently on each hit with probability `p`, drawing
    /// from a SplitMix64 stream seeded with `seed` (deterministic per
    /// site).
    Prob {
        /// Probability in `[0, 1]` of firing on each hit.
        p: f64,
        /// Seed of the site-private random stream.
        seed: u64,
    },
}

#[derive(Debug)]
struct Armed {
    action: FailAction,
    trigger: Trigger,
    hits: u64,
    spent: bool,
    rng: StdRng,
}

impl Armed {
    fn new(action: FailAction, trigger: Trigger) -> Armed {
        let seed = match trigger {
            Trigger::Prob { seed, .. } => seed,
            _ => 0,
        };
        Armed { action, trigger, hits: 0, spent: false, rng: StdRng::seed_from_u64(seed) }
    }

    fn hit(&mut self) -> Option<FailAction> {
        if self.spent {
            return None;
        }
        self.hits += 1;
        let fire = match self.trigger {
            Trigger::Always => true,
            Trigger::Once => {
                self.spent = true;
                true
            }
            Trigger::Nth(n) => {
                if self.hits == n {
                    self.spent = true;
                    true
                } else {
                    false
                }
            }
            Trigger::Prob { p, .. } => self.rng.gen_bool(p),
        };
        fire.then_some(self.action)
    }
}

/// Registry of armed failpoints; owned by [`crate::Stm`] and shared by
/// all its transactions.
#[derive(Debug, Default)]
pub struct Failpoints {
    /// Fast path: false ⇒ nothing armed anywhere, skip the map.
    enabled: AtomicBool,
    armed: Mutex<HashMap<&'static str, Armed>>,
}

impl Failpoints {
    /// Creates an empty (fully disabled) registry.
    pub fn new() -> Failpoints {
        Failpoints::default()
    }

    /// Arms `site` with `action` under `trigger`, replacing any prior
    /// configuration of that site (including its trigger state).
    pub fn set(&self, site: &'static str, action: FailAction, trigger: Trigger) {
        let mut armed = self.armed.lock();
        armed.insert(site, Armed::new(action, trigger));
        self.enabled.store(true, Ordering::Release);
    }

    /// Disarms `site`.
    pub fn clear(&self, site: &'static str) {
        let mut armed = self.armed.lock();
        armed.remove(site);
        if armed.is_empty() {
            self.enabled.store(false, Ordering::Release);
        }
    }

    /// Disarms every site.
    pub fn reset(&self) {
        let mut armed = self.armed.lock();
        armed.clear();
        self.enabled.store(false, Ordering::Release);
    }

    /// True if any site is armed (spent one-shot sites still count
    /// until cleared).
    pub fn any_armed(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Called by the runtime at instrumented sites: records a hit and
    /// returns the action to perform, if the site is armed and its
    /// trigger fires. One relaxed load when nothing is armed.
    pub fn check(&self, site: &'static str) -> Option<FailAction> {
        if !self.enabled.load(Ordering::Acquire) {
            return None;
        }
        self.armed.lock().get_mut(site)?.hit()
    }
}

/// Named failpoint sites instrumented in the STM runtime.
pub mod sites {
    /// In `OpenForUpdate`, immediately after the CAS acquired
    /// ownership — the window where this transaction holds the object
    /// but has not yet logged or written anything.
    pub const OPEN_UPDATE_AFTER_ACQUIRE: &str = "open_update.after_acquire";
    /// At the top of commit, before read-set validation.
    pub const COMMIT_BEFORE_VALIDATE: &str = "commit.before_validate";
    /// In commit, after validation succeeded but before ownership is
    /// released — torn state is maximally visible here.
    pub const COMMIT_BEFORE_RELEASE: &str = "commit.before_release";
    /// At the top of rollback, before the undo log is replayed — a
    /// `Kill` here orphans the transaction with its updates in place.
    pub const ABORT_BEFORE_UNDO: &str = "abort.before_undo";
    /// At the top of read-set validation (commit-time and
    /// incremental).
    pub const VALIDATE_ENTRY: &str = "validate.entry";

    /// Every instrumented site, for tests that sweep them.
    pub const ALL: [&str; 5] = [
        OPEN_UPDATE_AFTER_ACQUIRE,
        COMMIT_BEFORE_VALIDATE,
        COMMIT_BEFORE_RELEASE,
        ABORT_BEFORE_UNDO,
        VALIDATE_ENTRY,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_never_fires() {
        let fp = Failpoints::new();
        assert!(!fp.any_armed());
        for site in sites::ALL {
            assert_eq!(fp.check(site), None);
        }
    }

    #[test]
    fn always_fires_every_hit() {
        let fp = Failpoints::new();
        fp.set(sites::COMMIT_BEFORE_RELEASE, FailAction::Abort, Trigger::Always);
        for _ in 0..3 {
            assert_eq!(fp.check(sites::COMMIT_BEFORE_RELEASE), Some(FailAction::Abort));
        }
        // Other sites stay silent.
        assert_eq!(fp.check(sites::COMMIT_BEFORE_VALIDATE), None);
    }

    #[test]
    fn once_fires_exactly_once() {
        let fp = Failpoints::new();
        fp.set(sites::ABORT_BEFORE_UNDO, FailAction::Kill, Trigger::Once);
        assert_eq!(fp.check(sites::ABORT_BEFORE_UNDO), Some(FailAction::Kill));
        assert_eq!(fp.check(sites::ABORT_BEFORE_UNDO), None);
        assert_eq!(fp.check(sites::ABORT_BEFORE_UNDO), None);
    }

    #[test]
    fn nth_fires_on_exact_hit() {
        let fp = Failpoints::new();
        fp.set(sites::VALIDATE_ENTRY, FailAction::Delay(10), Trigger::Nth(3));
        assert_eq!(fp.check(sites::VALIDATE_ENTRY), None);
        assert_eq!(fp.check(sites::VALIDATE_ENTRY), None);
        assert_eq!(fp.check(sites::VALIDATE_ENTRY), Some(FailAction::Delay(10)));
        assert_eq!(fp.check(sites::VALIDATE_ENTRY), None);
    }

    #[test]
    fn prob_is_deterministic_for_a_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let fp = Failpoints::new();
            fp.set(
                sites::OPEN_UPDATE_AFTER_ACQUIRE,
                FailAction::Abort,
                Trigger::Prob { p: 0.5, seed },
            );
            (0..64).map(|_| fp.check(sites::OPEN_UPDATE_AFTER_ACQUIRE).is_some()).collect()
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed must reproduce the same firing pattern");
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f), "p=0.5 over 64 hits mixes");
        assert_ne!(a, run(43), "different seeds should (here) differ");
    }

    #[test]
    fn set_replaces_trigger_state() {
        let fp = Failpoints::new();
        fp.set(sites::COMMIT_BEFORE_VALIDATE, FailAction::Abort, Trigger::Once);
        assert!(fp.check(sites::COMMIT_BEFORE_VALIDATE).is_some());
        assert!(fp.check(sites::COMMIT_BEFORE_VALIDATE).is_none());
        // Re-arming resets the one-shot.
        fp.set(sites::COMMIT_BEFORE_VALIDATE, FailAction::Abort, Trigger::Once);
        assert!(fp.check(sites::COMMIT_BEFORE_VALIDATE).is_some());
    }

    #[test]
    fn clear_and_reset_disarm() {
        let fp = Failpoints::new();
        fp.set(sites::COMMIT_BEFORE_RELEASE, FailAction::Abort, Trigger::Always);
        fp.set(sites::VALIDATE_ENTRY, FailAction::Abort, Trigger::Always);
        fp.clear(sites::COMMIT_BEFORE_RELEASE);
        assert_eq!(fp.check(sites::COMMIT_BEFORE_RELEASE), None);
        assert!(fp.any_armed(), "other site still armed");
        fp.reset();
        assert!(!fp.any_armed());
        assert_eq!(fp.check(sites::VALIDATE_ENTRY), None);
    }
}
