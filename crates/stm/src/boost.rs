//! Transactional boosting support: striped abstract locks over the
//! word-level STM (DESIGN.md §4.12).
//!
//! The word-granularity STM aborts transactions whose *operations*
//! commute whenever they touch the same words (two inserts of distinct
//! keys both rewriting a hash-bucket head). Boosting (Herlihy &
//! Koskinen; Proust in PAPERS.md) recovers that lost concurrency by
//! detecting conflicts at the *semantic* level: each operation takes an
//! **abstract lock** on the key it touches, holds it two-phase for the
//! enclosing transaction's lifetime, and logs an **inverse operation**
//! that a rollback replays. Physical mutations run as small,
//! immediately-committed inner transactions on the same STM — the
//! word-level machinery still provides atomicity and opacity for each
//! step; the abstract locks provide isolation between the steps.
//!
//! This module supplies the lock table; the transaction-lifetime
//! commit/abort handlers it pairs with live on
//! [`Transaction`](crate::Transaction) (`on_commit` / `on_abort`).
//! A boosted data structure (e.g. `omt-workloads`' `BoostedHashMap`)
//! composes them:
//!
//! 1. [`AbstractLockTable::acquire`] the operation's key. The first
//!    acquisition per key registers a release in **both** handler
//!    lists, so the lock is held exactly until the outer transaction's
//!    fate is sealed (two-phase locking).
//! 2. Run the physical operation as an inner manual transaction
//!    ([`crate::Stm::begin`] — inner transactions must *not* use
//!    `atomically`, whose serial-mode gate the outer attempt already
//!    holds).
//! 3. If the operation had an effect, register its inverse with
//!    `on_abort`. Abort handlers run in reverse registration order, so
//!    inverses replay newest-first *under their still-held locks*, and
//!    each lock's release (registered before the ops it guards) runs
//!    after every inverse for that key.
//!
//! # Deadlock avoidance
//!
//! Two-phase locking can deadlock, so [`AbstractLockTable::acquire`] is
//! a *bounded* try-acquire: contention rounds consult the configured
//! [`ContentionManager`](crate::cm::ContentionManager) exactly like
//! word-level ownership conflicts do (wait / abort self / doom other),
//! every round re-checks our own doom flag, killed holders are routed
//! through orphan recovery, and the total wait is capped by
//! [`StmConfig::doom_wait_spins`](crate::StmConfig). On giving up it
//! returns [`TxError::BUSY`]: the outer retry loop rolls the
//! transaction back — abort handlers release every abstract lock it
//! holds — backs off, and retries. A cycle of waiters therefore always
//! breaks, because no participant waits unboundedly while holding
//! locks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use omt_util::sched::yield_point_keyed;

use crate::cm::CmDecision;
use crate::error::{TxError, TxResult};
use crate::schedpt;
use crate::tx::Transaction;
use crate::word::TxToken;

/// A striped table of abstract locks, each one word wide.
///
/// A lock word holds the owning transaction's raw token, or 0 when
/// free ([`crate::Stm::begin`] never issues token 0). Keys map to
/// stripes by masking — deliberately *identity* striping, so a caller
/// that numbers its keys densely and sizes the table at least as large
/// as its live-key range gets genuinely disjoint locks for disjoint
/// keys (the property the E2 boosted probe asserts).
///
/// The table is shared (`Arc`) between the data structure and the
/// release/inverse handlers it registers on transactions.
#[derive(Debug)]
pub struct AbstractLockTable {
    /// One lock word per stripe; length is a power of two.
    words: Box<[AtomicU64]>,
    mask: usize,
    acquires: AtomicU64,
    reentrant_hits: AtomicU64,
    wait_rounds: AtomicU64,
    busy_failures: AtomicU64,
    dooms_issued: AtomicU64,
    orphan_recoveries: AtomicU64,
    releases: AtomicU64,
}

/// Snapshot of an [`AbstractLockTable`]'s counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BoostLockStats {
    /// Fresh acquisitions (lock transferred from free to a holder).
    pub acquires: u64,
    /// Acquire calls satisfied because the caller already held the key.
    pub reentrant_hits: u64,
    /// Contention-wait rounds spent on held locks.
    pub wait_rounds: u64,
    /// Acquire calls that gave up ([`TxError::BUSY`] returned).
    pub busy_failures: u64,
    /// Doom flags set on lock holders by priority contention managers.
    pub dooms_issued: u64,
    /// Killed holders routed through word-level orphan recovery.
    pub orphan_recoveries: u64,
    /// Lock releases (commit and abort handlers both count here).
    pub releases: u64,
}

impl AbstractLockTable {
    /// Creates a table with at least `stripes` locks (rounded up to a
    /// power of two, minimum 1).
    pub fn new(stripes: usize) -> Arc<AbstractLockTable> {
        let len = stripes.max(1).next_power_of_two();
        Arc::new(AbstractLockTable {
            words: (0..len).map(|_| AtomicU64::new(0)).collect(),
            mask: len - 1,
            acquires: AtomicU64::new(0),
            reentrant_hits: AtomicU64::new(0),
            wait_rounds: AtomicU64::new(0),
            busy_failures: AtomicU64::new(0),
            dooms_issued: AtomicU64::new(0),
            orphan_recoveries: AtomicU64::new(0),
            releases: AtomicU64::new(0),
        })
    }

    /// Number of lock stripes (a power of two).
    pub fn stripes(&self) -> usize {
        self.words.len()
    }

    /// The stripe a key maps to.
    pub fn slot_of(&self, key: u64) -> usize {
        (key as usize) & self.mask
    }

    /// The token currently holding `key`'s lock, if any (tests and
    /// diagnostics; racy by nature).
    pub fn holder(&self, key: u64) -> Option<TxToken> {
        let raw = self.words[self.slot_of(key)].load(Ordering::Acquire) as u32;
        (raw != 0).then_some(TxToken(raw))
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BoostLockStats {
        BoostLockStats {
            acquires: self.acquires.load(Ordering::Relaxed),
            reentrant_hits: self.reentrant_hits.load(Ordering::Relaxed),
            wait_rounds: self.wait_rounds.load(Ordering::Relaxed),
            busy_failures: self.busy_failures.load(Ordering::Relaxed),
            dooms_issued: self.dooms_issued.load(Ordering::Relaxed),
            orphan_recoveries: self.orphan_recoveries.load(Ordering::Relaxed),
            releases: self.releases.load(Ordering::Relaxed),
        }
    }

    /// Acquires the abstract lock for `key` on behalf of `tx`, holding
    /// it until `tx` commits or aborts (two-phase): the first
    /// acquisition per slot registers the release in both of `tx`'s
    /// handler lists. Re-acquiring a slot this transaction already
    /// holds returns immediately.
    ///
    /// # Errors
    ///
    /// [`TxError::BUSY`] when the configured contention manager decides
    /// to abort self, or the holder outlasts the
    /// [`StmConfig::doom_wait_spins`](crate::StmConfig) wait budget —
    /// the caller's retry loop aborts the transaction (releasing all
    /// its abstract locks) and retries. [`TxError::DOOMED`] when a
    /// contention manager doomed `tx` on another transaction's behalf.
    ///
    /// # Panics
    ///
    /// Panics if `tx` already finished.
    pub fn acquire(self: &Arc<Self>, tx: &mut Transaction<'_>, key: u64) -> TxResult<()> {
        let slot = self.slot_of(key);
        let me = u64::from(tx.token().to_raw());
        let my_ctl = tx.ctl_arc();
        // Bound borrowed from the word-level doom-wait: both answer
        // "how long may one transaction stall behind another before
        // restarting instead".
        let budget = tx.stm().config().doom_wait_spins.max(1);
        let mut spins = 0u32;
        let mut waited = 0u32;
        loop {
            if my_ctl.is_doomed() {
                return Err(TxError::DOOMED);
            }
            yield_point_keyed(schedpt::BOOST_PRE_LOCK_CAS, slot);
            let word = &self.words[slot];
            let current = word.load(Ordering::Acquire);
            if current == me {
                self.reentrant_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            if current == 0 {
                if word.compare_exchange(0, me, Ordering::AcqRel, Ordering::Acquire).is_ok() {
                    self.acquires.fetch_add(1, Ordering::Relaxed);
                    // Two-phase hold: exactly one of these runs (the
                    // other list is dropped unrun), after the
                    // transaction's word-level fate is sealed.
                    let table = Arc::clone(self);
                    tx.on_commit(move || table.release(slot, me));
                    let table = Arc::clone(self);
                    tx.on_abort(move || table.release(slot, me));
                    return Ok(());
                }
                continue; // lost the race; re-examine
            }

            // Held by a foreign transaction: arbitrate exactly as
            // word-level contention does.
            let holder = TxToken(current as u32);
            let Some(other) = tx.stm().registry().ctl_of(holder) else {
                // The holder's transaction finished between our load
                // and the lookup; its release handler clears the word
                // promptly (handlers run right after finish). Count the
                // round against the wait budget and re-examine.
                self.note_wait(budget, &mut waited)?;
                yield_point_keyed(schedpt::BOOST_LOCK_WAIT, slot);
                std::hint::spin_loop();
                continue;
            };
            if other.is_killed() {
                // The holder's thread died. Its abort handlers (which
                // release abstract locks) run on the dying thread as
                // part of `kill`, and its word-level state is parked
                // for orphan recovery — trigger that recovery so the
                // physical structure quiesces, then re-examine.
                self.orphan_recoveries.fetch_add(1, Ordering::Relaxed);
                tx.stm().recover_orphan(holder);
                self.note_wait(budget, &mut waited)?;
                yield_point_keyed(schedpt::BOOST_LOCK_WAIT, slot);
                std::hint::spin_loop();
                continue;
            }
            match tx.stm().config().cm.arbitrate(&my_ctl, &other, spins) {
                CmDecision::Wait => {
                    spins += 1;
                    self.note_wait(budget, &mut waited)?;
                    yield_point_keyed(schedpt::BOOST_LOCK_WAIT, slot);
                    std::hint::spin_loop();
                }
                CmDecision::AbortSelf => {
                    self.busy_failures.fetch_add(1, Ordering::Relaxed);
                    return Err(TxError::BUSY);
                }
                CmDecision::AbortOther => {
                    if !other.doomed.swap(true, Ordering::AcqRel) {
                        self.dooms_issued.fetch_add(1, Ordering::Relaxed);
                    }
                    // The victim notices at its next open/validate/
                    // acquire and releases on rollback; wait bounded.
                    spins += 1;
                    self.note_wait(budget, &mut waited)?;
                    yield_point_keyed(schedpt::BOOST_LOCK_WAIT, slot);
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// One wait round against the shared budget; converts exhaustion
    /// into the BUSY that makes the outer retry loop break any
    /// potential deadlock cycle.
    fn note_wait(&self, budget: u32, waited: &mut u32) -> TxResult<()> {
        self.wait_rounds.fetch_add(1, Ordering::Relaxed);
        *waited += 1;
        if *waited > budget {
            self.busy_failures.fetch_add(1, Ordering::Relaxed);
            return Err(TxError::BUSY);
        }
        Ok(())
    }

    /// Releases `slot`, called only from the handlers registered by
    /// [`Self::acquire`] (so exactly once per acquisition).
    fn release(&self, slot: usize, me: u64) {
        yield_point_keyed(schedpt::BOOST_PRE_UNLOCK, slot);
        let swapped =
            self.words[slot].compare_exchange(me, 0, Ordering::AcqRel, Ordering::Acquire).is_ok();
        debug_assert!(swapped, "abstract lock released by a non-holder");
        if swapped {
            self.releases.fetch_add(1, Ordering::Relaxed);
        }
    }
}
