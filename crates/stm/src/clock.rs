//! The decentralized commit/acquisition clock layer (DESIGN.md §4.11).
//!
//! PR 3 introduced two global `AtomicU64` clocks — the commit-sequence
//! clock (bumped once per update-publishing release phase) and the
//! acquisition clock (bumped once per successful `open_for_update`
//! CAS). Correct, but both words are coherence hot spots: every writer
//! on every core bounces the same two cache lines. This module factors
//! the pair behind [`Clocks`] and implements the TL2 GV4–GV7 family of
//! decentralizations, selected by [`ClockMode`]:
//!
//! - **Global** — the baseline: both clocks are single words advanced
//!   with `fetch_add`. Stamps are unique and installed by their owner.
//! - **PassOnFail** (GV6/GV4) — a publishing commit tries *one*
//!   `compare_exchange` on the commit clock; on failure it adopts the
//!   observed (newer) value as its stamp instead of retrying. At most
//!   one CAS per commit and never a retry loop; duplicate stamps are
//!   tolerated (see the safety argument below).
//! - **Deferred** (GV5) — a publishing commit claims a stamp *above*
//!   the global commit clock from a per-stripe reservation array and
//!   never touches the shared word at all; readers that meet a leading
//!   stamp raise the global word (`fetch_max`) before extending. The
//!   acquisition clock is striped as in `Striped`.
//! - **Striped** — `open_for_update`'s bump lands on the calling
//!   thread's home stripe of a cache-line-padded
//!   [`omt_util::pad::ShardArray`]; validation reads the stripe *sum*.
//!   The commit clock stays a global `fetch_add`.
//!
//! # Why a striped acquisition clock stays a quiescence proof
//!
//! The single-word argument was: the clock is monotone, so
//! `now == snapshot + self_bumps` proves zero foreign bumps since the
//! snapshot. Each stripe is monotone, hence the stripe *sum* is
//! monotone too (reads of different stripes at different instants can
//! only under-count in-flight bumps, never over-count), so the same
//! equality over sums proves the same thing. The fence pairing is
//! unchanged: every bump — striped or not — is followed by a `Release`
//! fence, and `validate()` leads with an `Acquire` fence before loading
//! any stripe, so a validator that observed any post-bump effect of a
//! writer also observes that writer's bump in whichever stripe it
//! landed.
//!
//! # Why adopted and deferred stamps are safe
//!
//! Both non-owner-installed stamp schemes lean on one ordering fact: a
//! committing writer claims its stamp *after* every encounter-time
//! ownership acquisition (program order), and the claim begins with a
//! `SeqCst` fence so those header CASes are globally visible before the
//! clock is even read. A reader whose `read_ver` is `>= w` adopted it
//! from the shared clock word *after* the clock reached `w`, which is
//! after the `w`-stamped writer's clock load (which returned `< w` or
//! adopted `w` itself) — hence after all of that writer's acquisitions.
//! So such a reader can never have seen any of the writer's words in
//! their pre-acquisition state: it finds them `Owned` (and waits) or
//! already released at `w`. The remaining case — the reader read the
//! word *before* adopting `read_ver >= w` — is caught by timestamp
//! extension's revalidation, exactly as in `Global` mode. Same-object
//! stamps still strictly increase in every mode (the second writer's
//! acquisition of the object synchronizes with the first release, so
//! its own clock access observes `>= w` and claims `> w`), preserving
//! the no-version-ABA invariant that snapshot reads require.
//!
//! Deferred stamps additionally *lead* the shared word. The snapshot
//! cut invariant ("any publication that begins after a reader adopts
//! `R` carries a stamp `> R`") survives because a deferred stamp is
//! strictly greater than the global clock at claim time, and `R` never
//! exceeds the global clock at adoption time. A reader that meets a
//! leading stamp `v > read_ver` first raises the global word to `v`
//! (`fetch_max`) and then revalidates, so extension still terminates
//! and later readers adopt `read_ver >= v`.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use omt_util::pad::{CachePadded, ShardArray};

pub use crate::config::ClockMode;

/// Stripes in each decentralized clock array. Matches the registry's
/// shard count: enough to spread a few dozen threads, small enough
/// that summing stays cheap on the validation fast path.
pub(crate) const CLOCK_STRIPES: usize = 16;

/// A claimed commit-clock stamp plus the contention it cost, for
/// attribution into `TxCounters` / `StmStats`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Stamp {
    /// The timestamp to release published headers at.
    pub value: u64,
    /// Commit-clock CAS attempts that lost the race (0 or 1 per claim;
    /// `PassOnFail` adopts instead of retrying).
    pub cas_failures: u64,
    /// Per-stripe reservation CAS retries (`Deferred` only; non-zero
    /// only when multiple threads share a home stripe).
    pub bump_retries: u64,
}

/// The commit/acquisition clock pair behind one [`crate::Stm`], in one
/// of the four [`ClockMode`]s. Every word and stripe is cache-line
/// padded; the two global words can never false-share with each other
/// or with neighboring `Stm` fields.
#[derive(Debug)]
pub(crate) struct Clocks {
    mode: ClockMode,
    /// The shared commit-sequence word. In `Deferred` mode this lags
    /// the newest claimed stamp and is raised lazily by readers.
    commit: CachePadded<AtomicU64>,
    /// The shared acquisition word (`Global` / `PassOnFail` modes).
    acquire: CachePadded<AtomicU64>,
    /// Striped acquisition clock (`Striped` / `Deferred` modes); the
    /// acquisition count is the stripe sum.
    acquire_stripes: ShardArray,
    /// Per-stripe last-claimed-stamp reservations (`Deferred` mode).
    /// Stripe `i` only ever holds values `≡ i (mod CLOCK_STRIPES)`, so
    /// stamps are globally unique without any shared-word traffic.
    stamp_reservations: ShardArray,
}

impl Clocks {
    pub(crate) fn new(mode: ClockMode) -> Clocks {
        Clocks {
            mode,
            commit: CachePadded::new(AtomicU64::new(0)),
            acquire: CachePadded::new(AtomicU64::new(0)),
            acquire_stripes: ShardArray::new(CLOCK_STRIPES),
            stamp_reservations: ShardArray::new(CLOCK_STRIPES),
        }
    }

    pub(crate) fn mode(&self) -> ClockMode {
        self.mode
    }

    /// Whether commit stamps may exceed [`Clocks::commit_now`] (the
    /// `Deferred` mode), in which case readers must raise-then-extend
    /// on first sight of a leading stamp.
    pub(crate) fn leading_stamps(&self) -> bool {
        self.mode == ClockMode::Deferred
    }

    /// Current commit-sequence clock value. `SeqCst` keeps the load in
    /// the same total order as adopted/deferred stamp claims, so the
    /// reader-began-after-acquisitions argument in the module docs
    /// holds on weakly-ordered hardware too (on x86 this costs the
    /// same as an `Acquire` load).
    pub(crate) fn commit_now(&self) -> u64 {
        self.commit.load(Ordering::SeqCst)
    }

    /// Current acquisition count: the shared word, or the stripe sum.
    pub(crate) fn acquire_now(&self) -> u64 {
        match self.mode {
            ClockMode::Global | ClockMode::PassOnFail => self.acquire.load(Ordering::Acquire),
            ClockMode::Striped | ClockMode::Deferred => self.acquire_stripes.sum(),
        }
    }

    /// Announces a successful ownership acquisition. In the striped
    /// modes the bump is an uncontended RMW on the caller's home
    /// stripe. The trailing `Release` fence pairs with the `Acquire`
    /// fence at the top of `Transaction::validate` in every mode: a
    /// validator that observed any of the owner's subsequent in-place
    /// stores must then also observe this bump (wherever it landed).
    pub(crate) fn bump_acquire(&self) {
        match self.mode {
            ClockMode::Global | ClockMode::PassOnFail => {
                self.acquire.fetch_add(1, Ordering::AcqRel);
            }
            ClockMode::Striped | ClockMode::Deferred => {
                self.acquire_stripes.bump_home();
            }
        }
        fence(Ordering::Release);
    }

    /// Claims the stamp for one update-publishing release phase (or a
    /// snapshot-mode burn). Must run after every ownership acquisition
    /// of the claiming transaction and before its first header
    /// release-store; the stamp value is strictly greater than any
    /// stamp previously claimed for the same object.
    pub(crate) fn commit_stamp(&self) -> Stamp {
        match self.mode {
            ClockMode::Global | ClockMode::Striped => Stamp {
                value: self.commit.fetch_add(1, Ordering::SeqCst) + 1,
                cas_failures: 0,
                bump_retries: 0,
            },
            ClockMode::PassOnFail => self.pass_on_fail_stamp(),
            ClockMode::Deferred => self.deferred_stamp(),
        }
    }

    /// GV6: one CAS, and on failure adopt the winner's value. The
    /// leading `SeqCst` fence orders the claimant's encounter-time
    /// header CASes before the clock load, closing the store-load
    /// reordering window the module-doc safety argument depends on.
    fn pass_on_fail_stamp(&self) -> Stamp {
        fence(Ordering::SeqCst);
        let current = self.commit.load(Ordering::SeqCst);
        match self.commit.compare_exchange(current, current + 1, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => Stamp { value: current + 1, cas_failures: 0, bump_retries: 0 },
            // The observed value was installed after our load, hence
            // after all our acquisitions: adopting it keeps same-object
            // stamps strictly increasing, and the only transactions
            // that can share it hold disjoint ownership (both held
            // their full write sets when the clock reached this value).
            Err(observed) => Stamp { value: observed, cas_failures: 1, bump_retries: 0 },
        }
    }

    /// GV5: claim `stamp ≡ home (mod CLOCK_STRIPES)` strictly above
    /// both the global clock and this stripe's previous claim, touching
    /// only the caller's home stripe. The claim is a CAS loop, but the
    /// stripe is contended only by threads that share a home slot, so
    /// in steady state it never retries (retries are reported so the
    /// E5d invariants can check exactly that).
    fn deferred_stamp(&self) -> Stamp {
        fence(Ordering::SeqCst);
        let slot = self.stamp_reservations.home() as u64;
        let stripe = self.stamp_reservations.home_stripe();
        let stripes = CLOCK_STRIPES as u64;
        let mut retries = 0;
        let mut prev = stripe.load(Ordering::Acquire);
        loop {
            let global = self.commit.load(Ordering::SeqCst);
            let base = global.max(prev);
            // Round up past `base` to the next multiple of the stripe
            // count, plus the home offset: in (base, base + 2*stripes],
            // unique across stripes, strictly increasing within one.
            let value = (base - base % stripes) + stripes + slot;
            match stripe.compare_exchange(prev, value, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return Stamp { value, cas_failures: 0, bump_retries: retries },
                Err(observed) => {
                    retries += 1;
                    prev = observed;
                }
            }
        }
    }

    /// Raises the shared commit word to at least `to` (a leading stamp
    /// some reader met). Monotone; harmless if the clock already passed
    /// `to`. `SeqCst` for the same total-order reasons as
    /// [`Clocks::commit_now`].
    pub(crate) fn raise_to(&self, to: u64) {
        self.commit.fetch_max(to, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_stamps_are_sequential_and_published() {
        for mode in [ClockMode::Global, ClockMode::Striped] {
            let clocks = Clocks::new(mode);
            assert_eq!(clocks.commit_stamp().value, 1);
            assert_eq!(clocks.commit_stamp().value, 2);
            assert_eq!(clocks.commit_now(), 2, "owner-installed stamps advance the word");
            assert!(!clocks.leading_stamps());
        }
    }

    #[test]
    fn pass_on_fail_never_retries_and_tolerates_duplicates() {
        let clocks = Clocks::new(ClockMode::PassOnFail);
        const THREADS: usize = 8;
        const CLAIMS: usize = 500;
        let stamps: Vec<Vec<Stamp>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| scope.spawn(|| (0..CLAIMS).map(|_| clocks.commit_stamp()).collect()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut failures = 0;
        for per_thread in &stamps {
            for pair in per_thread.windows(2) {
                // Monotone (not strictly: adopted values may repeat
                // across threads, never within one claim sequence,
                // because the next load observes the adopted value).
                assert!(pair[1].value > pair[0].value, "per-thread stamps regressed");
            }
            failures += per_thread.iter().map(|s| s.cas_failures).sum::<u64>();
            assert!(per_thread.iter().all(|s| s.bump_retries == 0), "GV6 never retries");
        }
        // Every claim is one CAS: successes advance the word by one,
        // failures adopt; the word equals the success count.
        let total = (THREADS * CLAIMS) as u64;
        assert_eq!(clocks.commit_now(), total - failures);
        let max = stamps.iter().flatten().map(|s| s.value).max().unwrap();
        assert_eq!(max, clocks.commit_now(), "no stamp exceeds the word");
    }

    #[test]
    fn deferred_stamps_are_unique_leading_and_stripe_aligned() {
        let clocks = Clocks::new(ClockMode::Deferred);
        assert!(clocks.leading_stamps());
        const THREADS: usize = 8;
        const CLAIMS: usize = 500;
        let stamps: Vec<Vec<Stamp>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| scope.spawn(|| (0..CLAIMS).map(|_| clocks.commit_stamp()).collect()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<u64> = stamps.iter().flatten().map(|s| s.value).collect();
        let count = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), count, "deferred stamps must be globally unique");
        // The shared word never moved (nobody raised it), yet every
        // stamp strictly leads it.
        assert_eq!(clocks.commit_now(), 0);
        assert!(all[0] > 0);
        for per_thread in &stamps {
            for pair in per_thread.windows(2) {
                assert!(pair[1].value > pair[0].value);
            }
        }
    }

    #[test]
    fn deferred_stamp_clears_a_raised_clock() {
        let clocks = Clocks::new(ClockMode::Deferred);
        let first = clocks.commit_stamp().value;
        clocks.raise_to(first + 1_000);
        assert_eq!(clocks.commit_now(), first + 1_000);
        let next = clocks.commit_stamp().value;
        assert!(next > first + 1_000, "stamps stay strictly above the raised word");
        clocks.raise_to(first); // stale raise
        assert_eq!(clocks.commit_now(), first + 1_000, "raise_to is monotone");
    }

    #[test]
    fn striped_acquisitions_sum_exactly() {
        let clocks = Clocks::new(ClockMode::Striped);
        const THREADS: usize = 8;
        const BUMPS: usize = 1_000;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for _ in 0..BUMPS {
                        clocks.bump_acquire();
                    }
                });
            }
        });
        assert_eq!(clocks.acquire_now(), (THREADS * BUMPS) as u64);
        // The global acquire word is parked in striped modes.
        assert_eq!(clocks.acquire.load(Ordering::Acquire), 0);
    }

    #[test]
    fn global_acquisitions_use_the_shared_word() {
        let clocks = Clocks::new(ClockMode::Global);
        clocks.bump_acquire();
        clocks.bump_acquire();
        assert_eq!(clocks.acquire_now(), 2);
        assert_eq!(clocks.acquire_stripes.sum(), 0, "stripes parked in global mode");
    }
}
