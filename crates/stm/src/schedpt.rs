//! Named schedule points instrumented in the STM hot paths.
//!
//! Each constant names a cross-thread-visible step at which the runtime
//! calls [`omt_util::sched::yield_point`]. In production builds nothing
//! listens and each site costs one relaxed atomic load; under the
//! `omt-sched` explorer every virtual thread pauses at every site it
//! reaches, which is what makes interleavings enumerable and
//! counterexample traces readable (the trace prints these names).
//!
//! The map from site to code location:
//!
//! | site | where |
//! |------|-------|
//! | [`OPEN_READ_PRE_HEADER`] | `open_for_read`, before the header load |
//! | [`READ_PRE_LOAD`] | composed `read`, between open and the data load |
//! | [`OPEN_UPDATE_PRE_HEADER`] | `open_for_update`, top of the CAS loop |
//! | [`OPEN_UPDATE_PRE_ACQ_BUMP`] | after a winning CAS, before the acquisition-clock bump |
//! | [`WRITE_PRE_STORE`] | composed `write`, between undo logging and the data store |
//! | [`CONTEND_WAIT`] | every contention-wait round (CM `Wait` and doom-wait) |
//! | [`VALIDATE_PRE_CLOCKS`] | `validate`, before the two clock loads |
//! | [`VALIDATE_PRE_SCAN`] | `validate`, before the read-log scan |
//! | [`COMMIT_PRE_CLOCK_BUMP`] | `commit`, after validation, before the commit-clock bump |
//! | [`COMMIT_PRE_RELEASE`] | `commit`, before **each** release-phase header store |
//! | [`ROLLBACK_PRE_UNDO`] | `rollback`/`rollback_to`, before **each** undo-log field restore |
//! | [`ROLLBACK_PRE_RELEASE`] | `rollback`/`rollback_to`, before **each** ownership release |
//! | [`KILL_PRE_PARK`] | `kill`, before the logs are parked as an orphan |
//! | [`RECOVER_PRE_UNDO`] | `TxRegistry::recover`, before the orphan's undo replay |
//! | [`RECOVER_PRE_RELEASE`] | `TxRegistry::recover`, before **each** ownership release |
//! | [`GATE_ENTER`] | `enter_gate`, before taking the serial-mode gate |
//! | [`GATE_ACQUIRE_SHARED`] | `enter_gate`, each failed shared acquisition attempt (blocking) |
//! | [`GATE_ACQUIRE_EXCLUSIVE`] | `enter_gate`, each failed exclusive acquisition attempt (blocking) |
//! | [`GC_PRE_TRIM_SHARD`] | `TxRegistry::after_sweep`, before **each** registry shard's trim |
//! | [`STATS_PRE_SNAPSHOT`] | `StmStats::snapshot`, before the cross-shard sum |
//! | [`READ_PRE_RECHECK`] | snapshot-mode `read`, between the data load and the header re-check |
//! | [`READ_OWNED_WAIT`] | snapshot-mode open, each bounded-wait round on a foreign owner |
//! | [`EXTEND_PRE_VALIDATE`] | snapshot-mode open, before a timestamp-extension revalidation |
//! | [`CLOCK_PRE_RAISE`] | snapshot-mode open under `Deferred` stamps, before raising the global commit clock to a leading stamp |
//! | [`BOOST_PRE_LOCK_CAS`] | abstract-lock `acquire`, top of the load/CAS loop |
//! | [`BOOST_LOCK_WAIT`] | abstract-lock `acquire`, each bounded-wait round on a held lock |
//! | [`BOOST_PRE_UNLOCK`] | abstract-lock `release`, before the word is cleared |
//! | [`BOOST_PRE_INVERSE`] | boosted abort handler, before an inverse semantic op runs |
//! | [`MV_PRE_RETIRE`] | publishing commit, before a retired version is pushed onto its chain |
//! | [`MV_PRE_WALK`] | snapshot-mode `read`, before a version-chain lookup |
//! | [`MV_PRE_TRIM`] | `MvStore::trim`, before **each** chain shard's trim |
//!
//! Several sites are *gated* and fire only along specific paths, so
//! frozen schedules recorded against other configurations keep their
//! exact step sequences: `READ_PRE_RECHECK`, `READ_OWNED_WAIT`, and
//! `EXTEND_PRE_VALIDATE` fire only with `snapshot_reads` enabled;
//! `CLOCK_PRE_RAISE` additionally only under a clock mode whose commit
//! stamps can lead the global clock (`Deferred`); the four
//! `BOOST_*` sites fire only through the abstract-lock table
//! ([`crate::boost`]), which no word-level-only scenario touches; and
//! the three `MV_*` sites fire only with
//! [`StmConfig::mv_depth`](crate::StmConfig) `> 0` (at depth 0 no
//! retire or walk runs and the trim returns before its first yield).
//!
//! Sites that name an object use
//! [`omt_util::sched::yield_point_keyed`] with the object's raw
//! reference as key, which lets explorers prune schedules that differ
//! only in the order of steps on distinct objects. The two
//! `GATE_ACQUIRE_*` sites are *blocking* points raised through
//! [`omt_util::sched::block_until`]: an explorer sees the waiting
//! thread as blocked instead of spinning it, so scenarios may run with
//! serial-mode escalation enabled.

/// In `open_for_read`, before the header load that samples the word the
/// read log will record.
pub const OPEN_READ_PRE_HEADER: &str = "open_read.pre_header_load";
/// In the composed `read` barrier, between `open_for_read` returning
/// and the raw data load — the window in which a foreign owner's
/// in-place store can become the value this transaction computes with.
pub const READ_PRE_LOAD: &str = "read.pre_data_load";
/// Top of `open_for_update`'s load/CAS loop (covers every retry and
/// every contention re-examination).
pub const OPEN_UPDATE_PRE_HEADER: &str = "open_update.pre_header_load";
/// Immediately after `open_for_update`'s winning CAS, before the
/// acquisition-clock bump — the window the PR 3 two-clock fix closed.
pub const OPEN_UPDATE_PRE_ACQ_BUMP: &str = "open_update.pre_acquire_bump";
/// In the composed `write` barrier, between `log_for_undo` and the raw
/// data store.
pub const WRITE_PRE_STORE: &str = "write.pre_data_store";
/// One contention-wait round: the CM said `Wait`, or the winner is
/// waiting for a doomed victim to notice. Placed so a waiting virtual
/// thread hands the baton back instead of spinning it forever.
pub const CONTEND_WAIT: &str = "contend.wait";
/// In `validate`, after the doom/epoch checks, before the two clock
/// loads of the commit-sequence fast path.
pub const VALIDATE_PRE_CLOCKS: &str = "validate.pre_clocks";
/// In `validate`, after the clock comparison decided to scan, before
/// the read-log pass starts.
pub const VALIDATE_PRE_SCAN: &str = "validate.pre_scan";
/// In `commit`, after validation succeeded, before the commit-sequence
/// clock bump that announces the release phase.
pub const COMMIT_PRE_CLOCK_BUMP: &str = "commit.pre_clock_bump";
/// In `commit`'s release phase, before each header store that publishes
/// one updated object.
pub const COMMIT_PRE_RELEASE: &str = "commit.pre_release_store";
/// In rollback (full or to a savepoint), before each undo-log field
/// restore.
pub const ROLLBACK_PRE_UNDO: &str = "rollback.pre_undo_store";
/// In rollback (full or to a savepoint), before each ownership-release
/// header store.
pub const ROLLBACK_PRE_RELEASE: &str = "rollback.pre_release_store";
/// In `kill`, before the dead transaction's logs are parked in the
/// orphan pool (ownership is still in place, data possibly dirty).
pub const KILL_PRE_PARK: &str = "kill.pre_park";
/// In `TxRegistry::recover`, after the orphan's logs were claimed,
/// before its undo log is replayed.
pub const RECOVER_PRE_UNDO: &str = "recover.pre_undo_store";
/// In `TxRegistry::recover`, before each ownership-release header
/// store.
pub const RECOVER_PRE_RELEASE: &str = "recover.pre_release_store";
/// In `enter_gate`, before acquiring the serial-mode gate (shared or
/// exclusive).
pub const GATE_ENTER: &str = "gate.enter";
/// In `enter_gate`'s shared path: a *blocking* point raised on each
/// failed non-blocking read acquisition (a serial writer is queued or
/// holds the gate).
pub const GATE_ACQUIRE_SHARED: &str = "gate.acquire_shared";
/// In `enter_gate`'s exclusive path: a *blocking* point raised on each
/// failed non-blocking write acquisition (retry-loop attempts still
/// hold the gate shared).
pub const GATE_ACQUIRE_EXCLUSIVE: &str = "gate.acquire_exclusive";
/// In `TxRegistry::after_sweep`, before each registry shard is locked
/// and its log entries trimmed. Placed at the shard *boundary* — never
/// while a shard lock is held or a raw log pointer is live — so an
/// explorer can interleave mutator steps with the trim shard-by-shard.
/// (Tracing has no counterpart: marking is atomic with respect to
/// mutators — see `TxRegistry`'s `GcParticipant` impl.)
pub const GC_PRE_TRIM_SHARD: &str = "gc.pre_trim_shard";
/// In `StmStats::snapshot`, before the cross-shard counter sum — the
/// snapshot is not atomic with respect to concurrent increments.
pub const STATS_PRE_SNAPSHOT: &str = "stats.pre_snapshot";
/// Snapshot-mode composed `read`, between the raw data load and the
/// header re-check that closes the seqlock sandwich — the window in
/// which a writer's acquisition or release invalidates the loaded
/// value.
pub const READ_PRE_RECHECK: &str = "read.pre_recheck";
/// Snapshot-mode open, one bounded-wait round on a word owned by a
/// foreign transaction (the snapshot path waits for the release version
/// instead of logging an unvalidatable owned word).
pub const READ_OWNED_WAIT: &str = "read.owned_wait";
/// Snapshot-mode open, after observing a version newer than `read_ver`,
/// before the timestamp-extension revalidation.
pub const EXTEND_PRE_VALIDATE: &str = "extend.pre_validate";
/// Snapshot-mode open under `Deferred` commit stamps: after observing a
/// version newer than `read_ver`, before raising the global commit
/// clock to cover it (so the subsequent extension's refreshed
/// `read_ver` admits the stamp). Fires only when
/// `ClockMode::Deferred`'s leading stamps make the raise necessary.
pub const CLOCK_PRE_RAISE: &str = "clock.pre_raise";
/// Abstract-lock `acquire` (boosting), top of the load/CAS loop: covers
/// the initial attempt, every lost CAS race, and every re-examination
/// after a contention round. Keyed by the lock slot.
pub const BOOST_PRE_LOCK_CAS: &str = "boost.pre_lock_cas";
/// Abstract-lock `acquire`, one bounded-wait round on a lock held by a
/// foreign transaction (the CM said `Wait`, or a doomed holder has not
/// yet noticed). Keyed by the lock slot.
pub const BOOST_LOCK_WAIT: &str = "boost.lock_wait";
/// Abstract-lock `release` (commit/abort handler), before the lock word
/// is cleared. Keyed by the lock slot.
pub const BOOST_PRE_UNLOCK: &str = "boost.pre_unlock";
/// Boosted abort handler, before one inverse semantic operation runs
/// (under the still-held abstract lock).
pub const BOOST_PRE_INVERSE: &str = "boost.pre_inverse_op";
/// Publishing commit with `mv_depth > 0`, before one retired
/// `(value, interval)` pair is pushed onto its version chain — ordered
/// before the header release-store that installs the successor, which
/// is what the chain-walk race oracle sweeps. Keyed by the object.
pub const MV_PRE_RETIRE: &str = "mv.pre_retire";
/// Snapshot-mode composed `read` with `mv_depth > 0`, after meeting a
/// version newer than `read_ver`, before the version-chain lookup.
/// Keyed by the object.
pub const MV_PRE_WALK: &str = "mv.pre_walk";
/// `MvStore::trim` (GC), before each chain shard is locked and its
/// quiesced entries dropped. Placed at the shard *boundary* — never
/// under a shard lock — mirroring [`GC_PRE_TRIM_SHARD`].
pub const MV_PRE_TRIM: &str = "mv.pre_trim";

/// Every instrumented site, for tools that sweep or document them.
pub const ALL: [&str; 31] = [
    OPEN_READ_PRE_HEADER,
    READ_PRE_LOAD,
    OPEN_UPDATE_PRE_HEADER,
    OPEN_UPDATE_PRE_ACQ_BUMP,
    WRITE_PRE_STORE,
    CONTEND_WAIT,
    VALIDATE_PRE_CLOCKS,
    VALIDATE_PRE_SCAN,
    COMMIT_PRE_CLOCK_BUMP,
    COMMIT_PRE_RELEASE,
    ROLLBACK_PRE_UNDO,
    ROLLBACK_PRE_RELEASE,
    KILL_PRE_PARK,
    RECOVER_PRE_UNDO,
    RECOVER_PRE_RELEASE,
    GATE_ENTER,
    GATE_ACQUIRE_SHARED,
    GATE_ACQUIRE_EXCLUSIVE,
    GC_PRE_TRIM_SHARD,
    STATS_PRE_SNAPSHOT,
    READ_PRE_RECHECK,
    READ_OWNED_WAIT,
    EXTEND_PRE_VALIDATE,
    CLOCK_PRE_RAISE,
    BOOST_PRE_LOCK_CAS,
    BOOST_LOCK_WAIT,
    BOOST_PRE_UNLOCK,
    BOOST_PRE_INVERSE,
    MV_PRE_RETIRE,
    MV_PRE_WALK,
    MV_PRE_TRIM,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_names_are_unique() {
        let mut names: Vec<&str> = ALL.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL.len(), "duplicate schedule-point names");
    }

    #[test]
    fn site_names_are_dotted_paths() {
        for site in ALL {
            assert!(site.contains('.'), "site {site} should be area.step");
            assert!(!site.contains(' '), "site {site} should be machine-friendly");
        }
    }
}
