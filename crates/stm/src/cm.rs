//! Contention management: what `OpenForUpdate` does when it finds an
//! object owned by another transaction.
//!
//! The paper's contribution is the decomposed barrier interface, not
//! contention management — it uses simple self-abort policies. This
//! module adds the classic priority-based managers from the CM
//! literature so experiment E7 can ablate them on the direct-access
//! design:
//!
//! - [`CmPolicy::AbortSelf`] — abort immediately, let backoff sort it
//!   out (the paper's behaviour);
//! - [`CmPolicy::Spin`] — wait briefly for the owner to finish, then
//!   abort self (Polite-style);
//! - [`CmPolicy::OldestWins`] — Greedy-style: the transaction with the
//!   older timestamp wins and *dooms the other*, so long transactions
//!   cannot starve;
//! - [`CmPolicy::Karma`] — the transaction that has performed more work
//!   (open operations, accumulated across retries of the same atomic
//!   block) wins; ties break by age.
//!
//! Aborting the *other* transaction is asynchronous in a direct-access
//! STM: the winner cannot roll the victim back (only the victim knows
//! its undo log), so it sets the victim's **doom flag** in its
//! [`TxCtl`] and waits (bounded) for the victim to notice. Victims
//! check the flag at every open operation and at validation, observe
//! [`ConflictKind::Doomed`](crate::ConflictKind), and roll themselves
//! back, releasing ownership.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::word::TxToken;

/// Shared control block of one in-flight transaction: everything
/// another transaction's contention manager may inspect or write.
///
/// Registered in the [`crate::TxRegistry`] keyed by token while the
/// transaction is active, and held (via `Arc`) by any contender
/// currently arbitrating against it — so a contender can finish its
/// decision even if the owner commits concurrently.
#[derive(Debug)]
pub struct TxCtl {
    /// The owning transaction's token.
    pub(crate) token: TxToken,
    /// Age-based priority: the serial of the *first* attempt of this
    /// atomic block, stable across retries, so a long-suffering
    /// transaction keeps its seniority. Lower is older and wins.
    pub(crate) priority: u64,
    /// Work-based priority (Karma): open operations performed,
    /// accumulated across retries of the same atomic block. Higher
    /// wins.
    pub(crate) karma: AtomicU64,
    /// Set by a higher-priority contender; the transaction observes it
    /// at its next open or validate and aborts with
    /// [`ConflictKind::Doomed`](crate::ConflictKind).
    pub(crate) doomed: AtomicBool,
    /// Set when a failpoint killed the thread mid-transaction while it
    /// held ownership; contenders finding this recover the orphan via
    /// [`crate::TxRegistry`].
    pub(crate) killed: AtomicBool,
    /// The transaction's current `read_ver` (snapshot of the commit
    /// clock at begin, advanced by successful validations). Published
    /// so GC trimming can compute the minimum `read_ver` any active
    /// transaction might still be served at — the floor below which
    /// version-chain entries (`StmConfig::mv_depth`) are reclaimable.
    /// `u64::MAX` until the owning transaction first publishes.
    pub(crate) read_ver: AtomicU64,
}

impl TxCtl {
    pub(crate) fn new(token: TxToken, priority: u64, karma: u64) -> TxCtl {
        TxCtl {
            token,
            priority,
            karma: AtomicU64::new(karma),
            doomed: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            read_ver: AtomicU64::new(u64::MAX),
        }
    }

    /// The transaction's stable age-based priority (lower = older).
    pub fn priority(&self) -> u64 {
        self.priority
    }

    /// Work performed so far (open operations across retries).
    pub fn karma(&self) -> u64 {
        self.karma.load(Ordering::Relaxed)
    }

    /// True once a contention manager has doomed this transaction.
    pub fn is_doomed(&self) -> bool {
        self.doomed.load(Ordering::Acquire)
    }

    /// True once a `Kill` failpoint simulated thread death.
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::Acquire)
    }
}

/// What the contention manager tells `OpenForUpdate` to do about an
/// object owned by another transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmDecision {
    /// Spin once and re-examine the object.
    Wait,
    /// Give up: abort the *current* transaction with `Busy`.
    AbortSelf,
    /// Doom the *owner*: set its doom flag, then wait (bounded) for it
    /// to release the object.
    AbortOther,
}

/// A contention manager arbitrates between the running transaction
/// (`me`) and the current owner (`other`) of a contended object.
///
/// `spins` counts how many times this open operation has already
/// waited on this conflict, letting policies bound their patience.
pub trait ContentionManager {
    /// Decides what to do about the conflict.
    fn arbitrate(&self, me: &TxCtl, other: &TxCtl, spins: u32) -> CmDecision;
}

/// The paper's policy: abort self immediately.
#[derive(Debug, Clone, Copy, Default)]
pub struct AbortSelfCm;

impl ContentionManager for AbortSelfCm {
    fn arbitrate(&self, _me: &TxCtl, _other: &TxCtl, _spins: u32) -> CmDecision {
        CmDecision::AbortSelf
    }
}

/// Polite-style: wait up to `max_spins`, then abort self.
#[derive(Debug, Clone, Copy)]
pub struct SpinCm {
    /// Re-reads of the STM word before giving up.
    pub max_spins: u32,
}

impl ContentionManager for SpinCm {
    fn arbitrate(&self, _me: &TxCtl, _other: &TxCtl, spins: u32) -> CmDecision {
        if spins < self.max_spins {
            CmDecision::Wait
        } else {
            CmDecision::AbortSelf
        }
    }
}

/// Greedy-style timestamp priority: the older transaction dooms the
/// younger one; the younger waits briefly for the older, then aborts
/// itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct OldestWinsCm;

/// How long a losing transaction waits for a winning owner before
/// aborting itself (it cannot doom its senior).
const LOSER_PATIENCE: u32 = 128;

impl ContentionManager for OldestWinsCm {
    fn arbitrate(&self, me: &TxCtl, other: &TxCtl, spins: u32) -> CmDecision {
        if me.priority < other.priority {
            CmDecision::AbortOther
        } else if spins < LOSER_PATIENCE {
            CmDecision::Wait
        } else {
            CmDecision::AbortSelf
        }
    }
}

/// Karma: the transaction that has invested more work wins; ties break
/// by age so the decision is total and livelock-free.
#[derive(Debug, Clone, Copy, Default)]
pub struct KarmaCm;

impl ContentionManager for KarmaCm {
    fn arbitrate(&self, me: &TxCtl, other: &TxCtl, spins: u32) -> CmDecision {
        let mine = me.karma();
        let theirs = other.karma();
        let i_win = mine > theirs || (mine == theirs && me.priority < other.priority);
        if i_win {
            CmDecision::AbortOther
        } else if spins < LOSER_PATIENCE {
            CmDecision::Wait
        } else {
            CmDecision::AbortSelf
        }
    }
}

/// Contention-management policy applied when `OpenForUpdate` finds the
/// object owned by another transaction.
///
/// The enum selects one of the built-in [`ContentionManager`]s; see the
/// module docs for what each does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmPolicy {
    /// Abort immediately and let the retry loop back off.
    AbortSelf,
    /// Spin re-reading the STM word up to the given number of times
    /// before giving up and aborting.
    Spin {
        /// Maximum number of re-reads before aborting.
        max_spins: u32,
    },
    /// Greedy-style: older transaction dooms the younger.
    OldestWins,
    /// Karma-style: the transaction with more accumulated work dooms
    /// the other; ties break by age.
    Karma,
}

impl Default for CmPolicy {
    fn default() -> CmPolicy {
        CmPolicy::Spin { max_spins: 128 }
    }
}

impl CmPolicy {
    /// Arbitrates the conflict under this policy.
    pub fn arbitrate(&self, me: &TxCtl, other: &TxCtl, spins: u32) -> CmDecision {
        match *self {
            CmPolicy::AbortSelf => AbortSelfCm.arbitrate(me, other, spins),
            CmPolicy::Spin { max_spins } => SpinCm { max_spins }.arbitrate(me, other, spins),
            CmPolicy::OldestWins => OldestWinsCm.arbitrate(me, other, spins),
            CmPolicy::Karma => KarmaCm.arbitrate(me, other, spins),
        }
    }

    /// True for policies that may doom the other transaction (and so
    /// need doom-flag checks to be observable quickly).
    pub fn is_priority_based(&self) -> bool {
        matches!(self, CmPolicy::OldestWins | CmPolicy::Karma)
    }
}

impl std::fmt::Display for CmPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CmPolicy::AbortSelf => write!(f, "abort-self"),
            CmPolicy::Spin { max_spins } => write!(f, "spin-{max_spins}"),
            CmPolicy::OldestWins => write!(f, "oldest-wins"),
            CmPolicy::Karma => write!(f, "karma"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(token: u32, priority: u64, karma: u64) -> TxCtl {
        TxCtl::new(TxToken(token), priority, karma)
    }

    #[test]
    fn abort_self_always_aborts_self() {
        let (a, b) = (ctl(1, 1, 0), ctl(2, 2, 0));
        assert_eq!(CmPolicy::AbortSelf.arbitrate(&a, &b, 0), CmDecision::AbortSelf);
        assert_eq!(CmPolicy::AbortSelf.arbitrate(&b, &a, 99), CmDecision::AbortSelf);
    }

    #[test]
    fn spin_waits_then_gives_up() {
        let (a, b) = (ctl(1, 1, 0), ctl(2, 2, 0));
        let p = CmPolicy::Spin { max_spins: 3 };
        assert_eq!(p.arbitrate(&a, &b, 0), CmDecision::Wait);
        assert_eq!(p.arbitrate(&a, &b, 2), CmDecision::Wait);
        assert_eq!(p.arbitrate(&a, &b, 3), CmDecision::AbortSelf);
    }

    #[test]
    fn oldest_wins_dooms_younger() {
        let (old, young) = (ctl(1, 10, 0), ctl(2, 20, 0));
        assert_eq!(CmPolicy::OldestWins.arbitrate(&old, &young, 0), CmDecision::AbortOther);
        // The younger waits at first, then aborts itself.
        assert_eq!(CmPolicy::OldestWins.arbitrate(&young, &old, 0), CmDecision::Wait);
        assert_eq!(
            CmPolicy::OldestWins.arbitrate(&young, &old, LOSER_PATIENCE),
            CmDecision::AbortSelf
        );
    }

    #[test]
    fn karma_prefers_work_then_age() {
        let (rich, poor) = (ctl(1, 20, 100), ctl(2, 10, 1));
        assert_eq!(CmPolicy::Karma.arbitrate(&rich, &poor, 0), CmDecision::AbortOther);
        assert_eq!(CmPolicy::Karma.arbitrate(&poor, &rich, 0), CmDecision::Wait);
        // Equal karma: older (lower priority number) wins.
        let (old, young) = (ctl(3, 1, 5), ctl(4, 2, 5));
        assert_eq!(CmPolicy::Karma.arbitrate(&old, &young, 0), CmDecision::AbortOther);
        assert_eq!(CmPolicy::Karma.arbitrate(&young, &old, LOSER_PATIENCE), CmDecision::AbortSelf);
    }

    #[test]
    fn decisions_are_antisymmetric() {
        // No pair where both sides doom each other — that would be
        // mutual destruction. (Wait/AbortSelf on both sides is fine.)
        for policy in [CmPolicy::OldestWins, CmPolicy::Karma] {
            for (pa, ka, pb, kb) in
                [(1u64, 0u64, 2u64, 0u64), (2, 5, 1, 5), (1, 3, 2, 9), (5, 2, 6, 2)]
            {
                let a = ctl(1, pa, ka);
                let b = ctl(2, pb, kb);
                let ab = policy.arbitrate(&a, &b, 0);
                let ba = policy.arbitrate(&b, &a, 0);
                assert!(
                    !(ab == CmDecision::AbortOther && ba == CmDecision::AbortOther),
                    "{policy}: mutual AbortOther for prio ({pa},{pb}) karma ({ka},{kb})"
                );
            }
        }
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(CmPolicy::AbortSelf.to_string(), "abort-self");
        assert_eq!(CmPolicy::Spin { max_spins: 128 }.to_string(), "spin-128");
        assert_eq!(CmPolicy::OldestWins.to_string(), "oldest-wins");
        assert_eq!(CmPolicy::Karma.to_string(), "karma");
    }

    #[test]
    fn priority_based_classification() {
        assert!(!CmPolicy::AbortSelf.is_priority_based());
        assert!(!CmPolicy::default().is_priority_based());
        assert!(CmPolicy::OldestWins.is_priority_based());
        assert!(CmPolicy::Karma.is_priority_based());
    }
}
