//! Per-transaction logs: read log, update log, undo log.
//!
//! - The **read log** records each object opened for read together with
//!   the STM word observed at the time; commit-time validation re-checks
//!   every entry.
//! - The **update log** records each object acquired for update together
//!   with the version it had; the STM word of an owned object points at
//!   its update-log entry (by index), so entries are never moved — GC
//!   trimming tombstones them instead.
//! - The **undo log** records `(object, field, old value)` before each
//!   first in-place store, to roll the heap back on abort.
//!
//! Savepoints capture log lengths for closed-nested transactions.

use omt_heap::ObjRef;

use crate::word::{StmWord, TxToken};

/// A read-log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ReadEntry {
    pub obj: ObjRef,
    /// Raw STM word observed by `OpenForRead`.
    pub observed: u64,
}

impl ReadEntry {
    /// True if the word observed at open time encoded ownership by a
    /// transaction other than `me`.
    ///
    /// Such an entry can never pass validation (the owner either aborts
    /// — restoring a version the entry did not observe as a version —
    /// or commits with a bumped version), and the value read alongside
    /// it may have been the owner's uncommitted in-place store. Its
    /// presence therefore disables the commit-sequence-clock fast path
    /// for the whole transaction: the acquisition may predate the
    /// transaction's clock snapshots and the owner's later in-place
    /// stores bump no clock, so the clocks cannot vouch for this entry.
    pub(crate) fn observed_foreign_owner(&self, me: TxToken) -> bool {
        matches!(StmWord::decode(self.observed), StmWord::Owned { owner, .. } if owner != me)
    }
}

/// An update-log entry (the target of an owned STM word).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct UpdateEntry {
    pub obj: ObjRef,
    /// Version the object had when acquired; incremented on commit.
    /// Abort also increments it if the object was [`dirtied`], because a
    /// concurrent optimistic reader may have loaded an uncommitted
    /// in-place store: releasing at the *original* version would let
    /// that reader pass validation against data that was rolled away
    /// (see DESIGN.md §4.8, "abort must burn a version").
    ///
    /// [`dirtied`]: UpdateEntry::dirtied
    pub original_version: u64,
    /// Tombstone set by GC trimming when the object died; a dead entry
    /// is skipped at release time.
    pub dead: bool,
    /// True once `log_for_undo` ran against this entry: the owner was
    /// cleared to store in place, so the object's fields may have held
    /// uncommitted values that a concurrent reader observed. Clean
    /// (never-dirtied) entries may release at the original version on
    /// abort without burning a version number.
    pub dirtied: bool,
}

/// An undo-log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct UndoEntry {
    pub obj: ObjRef,
    pub field: u32,
    /// Raw field bits to restore on abort.
    pub old_bits: u64,
}

/// Marks a point in the logs for closed-nested rollback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Savepoint {
    pub(crate) read_len: usize,
    pub(crate) update_len: usize,
    pub(crate) undo_len: usize,
    pub(crate) alloc_len: usize,
    /// Commit/abort-handler list lengths (boosting, DESIGN.md §4.12):
    /// `rollback_to` runs abort handlers registered past the savepoint
    /// and truncates both lists, so a partially rolled-back nested
    /// region also rolls back its semantic effects. Filled in by
    /// [`Transaction::savepoint`](crate::Transaction::savepoint) — the
    /// handler lists live on the transaction, not in the pooled logs.
    pub(crate) commit_handler_len: usize,
    pub(crate) abort_handler_len: usize,
}

/// All logs of one transaction.
///
/// Boxed by the transaction and registered (by pointer) with the STM's
/// GC registry, so the collector can trace rollback roots and trim dead
/// entries under the stop-the-world contract.
#[derive(Debug, Default)]
pub(crate) struct TxLogs {
    pub read: Vec<ReadEntry>,
    pub update: Vec<UpdateEntry>,
    pub undo: Vec<UndoEntry>,
    /// Objects allocated inside the transaction (garbage on abort).
    pub allocs: Vec<ObjRef>,
}

impl TxLogs {
    pub(crate) fn new() -> TxLogs {
        TxLogs::default()
    }

    pub(crate) fn clear(&mut self) {
        self.read.clear();
        self.update.clear();
        self.undo.clear();
        self.allocs.clear();
    }

    pub(crate) fn savepoint(&self) -> Savepoint {
        Savepoint {
            read_len: self.read.len(),
            update_len: self.update.len(),
            undo_len: self.undo.len(),
            alloc_len: self.allocs.len(),
            commit_handler_len: 0,
            abort_handler_len: 0,
        }
    }

    /// Approximate heap footprint of the logs, for the GC experiment.
    pub(crate) fn byte_size(&self) -> usize {
        self.read.len() * std::mem::size_of::<ReadEntry>()
            + self.update.len() * std::mem::size_of::<UpdateEntry>()
            + self.undo.len() * std::mem::size_of::<UndoEntry>()
            + self.allocs.len() * std::mem::size_of::<ObjRef>()
    }

    /// Entry counts `(read, update, undo)`.
    pub(crate) fn lens(&self) -> (usize, usize, usize) {
        (self.read.len(), self.update.len(), self.undo.len())
    }

    /// GC: references that must stay live because abort would write them
    /// back into the heap.
    pub(crate) fn trace_rollback_roots(&self, mark: &mut dyn FnMut(ObjRef)) {
        for entry in &self.undo {
            if let Some(r) = omt_heap::Word::from_bits(entry.old_bits).as_ref() {
                mark(r);
            }
        }
    }

    /// GC: drop or tombstone entries whose objects died (the paper's
    /// log trimming). Returns the number of entries removed.
    pub(crate) fn trim(&mut self, is_live: &dyn Fn(ObjRef) -> bool) -> usize {
        let before = self.read.len() + self.undo.len() + self.allocs.len();
        self.read.retain(|e| is_live(e.obj));
        self.undo.retain(|e| is_live(e.obj));
        self.allocs.retain(|r| is_live(*r));
        let mut tombstoned = 0;
        for entry in &mut self.update {
            if !entry.dead && !is_live(entry.obj) {
                entry.dead = true;
                tombstoned += 1;
            }
        }
        before - (self.read.len() + self.undo.len() + self.allocs.len()) + tombstoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_heap::{ClassDesc, Heap, Word};

    fn sample_refs(n: usize) -> (Heap, Vec<ObjRef>) {
        let heap = Heap::new();
        let class = heap.define_class(ClassDesc::with_var_fields("C", &["v"]));
        let refs = (0..n).map(|_| heap.alloc(class).unwrap()).collect();
        (heap, refs)
    }

    #[test]
    fn savepoint_captures_lengths() {
        let (_heap, refs) = sample_refs(2);
        let mut logs = TxLogs::new();
        logs.read.push(ReadEntry { obj: refs[0], observed: 0 });
        let sp = logs.savepoint();
        assert_eq!(sp.read_len, 1);
        assert_eq!(sp.update_len, 0);
        logs.read.push(ReadEntry { obj: refs[1], observed: 2 });
        assert_eq!(logs.savepoint().read_len, 2);
    }

    #[test]
    fn trim_drops_dead_read_and_undo_entries() {
        let (_heap, refs) = sample_refs(2);
        let (live, dead) = (refs[0], refs[1]);
        let mut logs = TxLogs::new();
        logs.read.push(ReadEntry { obj: live, observed: 0 });
        logs.read.push(ReadEntry { obj: dead, observed: 0 });
        logs.undo.push(UndoEntry { obj: dead, field: 0, old_bits: 0 });
        let removed = logs.trim(&|r| r == live);
        assert_eq!(removed, 2);
        assert_eq!(logs.read.len(), 1);
        assert!(logs.undo.is_empty());
    }

    #[test]
    fn trim_tombstones_update_entries_in_place() {
        let (_heap, refs) = sample_refs(2);
        let mut logs = TxLogs::new();
        logs.update.push(UpdateEntry {
            obj: refs[0],
            original_version: 3,
            dead: false,
            dirtied: false,
        });
        logs.update.push(UpdateEntry {
            obj: refs[1],
            original_version: 5,
            dead: false,
            dirtied: false,
        });
        let removed = logs.trim(&|r| r == refs[0]);
        assert_eq!(removed, 1);
        // Indices are preserved; entry 1 is tombstoned, not removed.
        assert_eq!(logs.update.len(), 2);
        assert!(!logs.update[0].dead);
        assert!(logs.update[1].dead);
    }

    #[test]
    fn rollback_roots_are_old_value_refs() {
        let (_heap, refs) = sample_refs(2);
        let mut logs = TxLogs::new();
        logs.undo.push(UndoEntry {
            obj: refs[0],
            field: 0,
            old_bits: Word::from_ref(refs[1]).to_bits(),
        });
        logs.undo.push(UndoEntry {
            obj: refs[0],
            field: 0,
            old_bits: Word::from_scalar(7).to_bits(),
        });
        let mut roots = Vec::new();
        logs.trace_rollback_roots(&mut |r| roots.push(r));
        assert_eq!(roots, vec![refs[1]]);
    }

    #[test]
    fn foreign_owner_detection_decodes_the_observed_word() {
        use crate::word::owned_bits;
        let (_heap, refs) = sample_refs(1);
        let me = TxToken(7);
        let version = ReadEntry { obj: refs[0], observed: StmWord::Version(3).encode() };
        assert!(!version.observed_foreign_owner(me));
        let mine = ReadEntry { obj: refs[0], observed: owned_bits(me, 0) };
        assert!(!mine.observed_foreign_owner(me));
        let theirs = ReadEntry { obj: refs[0], observed: owned_bits(TxToken(8), 0) };
        assert!(theirs.observed_foreign_owner(me));
    }

    #[test]
    fn byte_size_grows_with_entries() {
        let (_heap, refs) = sample_refs(1);
        let mut logs = TxLogs::new();
        let empty = logs.byte_size();
        logs.read.push(ReadEntry { obj: refs[0], observed: 0 });
        assert!(logs.byte_size() > empty);
    }
}
