//! STM-wide statistics: transaction outcomes, barrier executions, and
//! filtering effectiveness.
//!
//! These counters regenerate the paper's dynamic-count tables: how many
//! `OpenForRead` / `OpenForUpdate` / `LogForUndo` operations executed,
//! how many log entries the runtime filter suppressed, and abort rates.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    ($($(#[$meta:meta])* $name:ident),+ $(,)?) => {
        /// Live counters owned by an [`crate::Stm`]; relaxed atomics.
        #[derive(Debug, Default)]
        pub struct StmStats {
            $( $(#[$meta])* pub(crate) $name: AtomicU64, )+
        }

        /// A point-in-time copy of [`StmStats`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct StmStatsSnapshot {
            $( $(#[$meta])* pub $name: u64, )+
        }

        impl StmStats {
            /// Takes a snapshot of all counters.
            pub fn snapshot(&self) -> StmStatsSnapshot {
                StmStatsSnapshot {
                    $( $name: self.$name.load(Ordering::Relaxed), )+
                }
            }
        }
    };
}

counters! {
    /// Transactions begun.
    begins,
    /// Transactions committed.
    commits,
    /// Aborts because `OpenForUpdate` lost to another owner.
    aborts_busy,
    /// Aborts because read-set validation failed.
    aborts_invalid,
    /// Aborts because the renumbering epoch advanced.
    aborts_epoch,
    /// Aborts requested explicitly by the user.
    aborts_explicit,
    /// Aborts of transactions doomed by another transaction's
    /// contention manager (priority policies).
    aborts_doomed,
    /// Doom flags set by priority contention managers (each one aborts
    /// some *other* transaction).
    dooms_issued,
    /// Times a retry loop escalated into exclusive serial mode after
    /// too many consecutive aborts.
    serial_entries,
    /// Failpoint actions triggered (fault injection).
    failpoint_fires,
    /// Transactions killed mid-flight by a `Kill` failpoint (simulated
    /// thread death while holding ownership).
    txs_killed,
    /// Orphaned (killed) transactions rolled back and released by a
    /// concurrent transaction's recovery path.
    orphans_recovered,
    /// `OpenForRead` barrier executions.
    open_read_ops,
    /// `OpenForUpdate` barrier executions.
    open_update_ops,
    /// `LogForUndo` barrier executions.
    log_undo_ops,
    /// Read-log entries actually appended.
    read_entries,
    /// Read-log appends suppressed by the runtime filter.
    read_filtered,
    /// Undo-log entries actually appended.
    undo_entries,
    /// Undo-log appends suppressed by the runtime filter.
    undo_filtered,
    /// Successful ownership acquisitions (CAS to owned).
    acquires,
    /// Read-set validations performed (commit-time and incremental).
    validations,
    /// Incremental (mid-transaction) validations.
    mid_validations,
    /// Contention-manager spin iterations.
    cm_spins,
    /// Log entries removed or tombstoned by GC trimming.
    gc_trimmed_entries,
}

impl StmStats {
    pub(crate) fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

impl StmStatsSnapshot {
    /// Total aborts across all causes.
    pub fn aborts(&self) -> u64 {
        self.aborts_busy
            + self.aborts_invalid
            + self.aborts_epoch
            + self.aborts_explicit
            + self.aborts_doomed
    }

    /// Aborts per begun transaction (0 if none begun).
    pub fn abort_rate(&self) -> f64 {
        if self.begins == 0 {
            0.0
        } else {
            self.aborts() as f64 / self.begins as f64
        }
    }

    /// Fraction of read-log appends suppressed by the filter.
    pub fn read_filter_rate(&self) -> f64 {
        let total = self.read_entries + self.read_filtered;
        if total == 0 {
            0.0
        } else {
            self.read_filtered as f64 / total as f64
        }
    }

    /// Fraction of undo-log appends suppressed by the filter.
    pub fn undo_filter_rate(&self) -> f64 {
        let total = self.undo_entries + self.undo_filtered;
        if total == 0 {
            0.0
        } else {
            self.undo_filtered as f64 / total as f64
        }
    }

    /// Subtracts a baseline snapshot, yielding deltas.
    pub fn delta_since(&self, baseline: &StmStatsSnapshot) -> StmStatsSnapshot {
        StmStatsSnapshot {
            begins: self.begins - baseline.begins,
            commits: self.commits - baseline.commits,
            aborts_busy: self.aborts_busy - baseline.aborts_busy,
            aborts_invalid: self.aborts_invalid - baseline.aborts_invalid,
            aborts_epoch: self.aborts_epoch - baseline.aborts_epoch,
            aborts_explicit: self.aborts_explicit - baseline.aborts_explicit,
            aborts_doomed: self.aborts_doomed - baseline.aborts_doomed,
            dooms_issued: self.dooms_issued - baseline.dooms_issued,
            serial_entries: self.serial_entries - baseline.serial_entries,
            failpoint_fires: self.failpoint_fires - baseline.failpoint_fires,
            txs_killed: self.txs_killed - baseline.txs_killed,
            orphans_recovered: self.orphans_recovered - baseline.orphans_recovered,
            open_read_ops: self.open_read_ops - baseline.open_read_ops,
            open_update_ops: self.open_update_ops - baseline.open_update_ops,
            log_undo_ops: self.log_undo_ops - baseline.log_undo_ops,
            read_entries: self.read_entries - baseline.read_entries,
            read_filtered: self.read_filtered - baseline.read_filtered,
            undo_entries: self.undo_entries - baseline.undo_entries,
            undo_filtered: self.undo_filtered - baseline.undo_filtered,
            acquires: self.acquires - baseline.acquires,
            validations: self.validations - baseline.validations,
            mid_validations: self.mid_validations - baseline.mid_validations,
            cm_spins: self.cm_spins - baseline.cm_spins,
            gc_trimmed_entries: self.gc_trimmed_entries - baseline.gc_trimmed_entries,
        }
    }
}

impl fmt::Display for StmStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tx: {} begun, {} committed, {} aborted ({:.1}%); barriers: {} open-read, \
             {} open-update, {} log-undo; filtered: {} read ({:.1}%), {} undo ({:.1}%)",
            self.begins,
            self.commits,
            self.aborts(),
            self.abort_rate() * 100.0,
            self.open_read_ops,
            self.open_update_ops,
            self.log_undo_ops,
            self.read_filtered,
            self.read_filter_rate() * 100.0,
            self.undo_filtered,
            self.undo_filter_rate() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_counters() {
        let stats = StmStats::default();
        stats.add(&stats.begins, 3);
        stats.add(&stats.commits, 2);
        stats.add(&stats.aborts_busy, 1);
        let snap = stats.snapshot();
        assert_eq!(snap.begins, 3);
        assert_eq!(snap.commits, 2);
        assert_eq!(snap.aborts(), 1);
        assert!((snap.abort_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn filter_rates() {
        let snap = StmStatsSnapshot {
            read_entries: 25,
            read_filtered: 75,
            undo_entries: 10,
            undo_filtered: 0,
            ..StmStatsSnapshot::default()
        };
        assert!((snap.read_filter_rate() - 0.75).abs() < 1e-9);
        assert_eq!(snap.undo_filter_rate(), 0.0);
    }

    #[test]
    fn delta_since_subtracts() {
        let a = StmStatsSnapshot { begins: 10, commits: 8, ..Default::default() };
        let b = StmStatsSnapshot { begins: 4, commits: 3, ..Default::default() };
        let d = a.delta_since(&b);
        assert_eq!(d.begins, 6);
        assert_eq!(d.commits, 5);
    }

    #[test]
    fn rates_are_zero_when_empty() {
        let snap = StmStatsSnapshot::default();
        assert_eq!(snap.abort_rate(), 0.0);
        assert_eq!(snap.read_filter_rate(), 0.0);
    }

    #[test]
    fn display_mentions_key_counts() {
        let snap = StmStatsSnapshot { begins: 7, ..Default::default() };
        assert!(snap.to_string().contains("7 begun"));
    }
}
