//! STM-wide statistics: transaction outcomes, barrier executions, and
//! filtering effectiveness.
//!
//! These counters regenerate the paper's dynamic-count tables: how many
//! `OpenForRead` / `OpenForUpdate` / `LogForUndo` operations executed,
//! how many log entries the runtime filter suppressed, and abort rates.
//!
//! # Sharding
//!
//! Counters are *sharded*: [`StmStats`] holds an array of
//! cache-line-padded [`StatShard`] cells and each thread increments the
//! shard assigned to it, so the commit/abort hot path never `fetch_add`s
//! on a cache line another core is writing. [`StmStats::snapshot`]
//! aggregates all shards on demand — reads are rare and pay the cost,
//! writers pay nothing beyond an uncontended relaxed RMW.
//!
//! Recording can also be disabled wholesale (via
//! [`crate::StmConfig::record_stats`]): every record call then
//! compiles down to a single predictable branch, so throughput-mode
//! benchmarks can measure the runtime without counter overhead.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of counter shards. A power of two; more shards than typical
/// hardware threads so round-robin assignment rarely aliases.
const STAT_SHARDS: usize = 32;

/// Monotonic source of per-thread shard assignments.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard index, assigned round-robin on first use.
    /// Global across all `StmStats` instances: a thread always uses the
    /// same stripe, which keeps its counter lines in its own cache.
    static SHARD_INDEX: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) & (STAT_SHARDS - 1);
}

macro_rules! counters {
    ($($(#[$meta:meta])* $name:ident),+ $(,)?) => {
        /// One cache-line-padded stripe of counters, written by (at
        /// most a few) threads that hash to it; relaxed atomics.
        #[derive(Debug, Default)]
        #[repr(align(128))]
        pub(crate) struct StatShard {
            $( $(#[$meta])* pub(crate) $name: AtomicU64, )+
        }

        /// A point-in-time copy of [`StmStats`], aggregated across all
        /// shards.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct StmStatsSnapshot {
            $( $(#[$meta])* pub $name: u64, )+
        }

        impl StmStats {
            /// Takes a snapshot of all counters (sums every shard).
            /// The sum is not atomic against concurrent increments; the
            /// schedule point makes that window explorable.
            pub fn snapshot(&self) -> StmStatsSnapshot {
                omt_util::sched::yield_point(crate::schedpt::STATS_PRE_SNAPSHOT);
                let mut snap = StmStatsSnapshot::default();
                for shard in self.shards.iter() {
                    $( snap.$name += shard.$name.load(Ordering::Relaxed); )+
                }
                snap
            }
        }

        impl StmStatsSnapshot {
            /// Subtracts a baseline snapshot, yielding deltas.
            pub fn delta_since(&self, baseline: &StmStatsSnapshot) -> StmStatsSnapshot {
                StmStatsSnapshot {
                    $( $name: self.$name - baseline.$name, )+
                }
            }
        }
    };
}

counters! {
    /// Transactions begun.
    begins,
    /// Transactions committed.
    commits,
    /// Aborts because `OpenForUpdate` lost to another owner.
    aborts_busy,
    /// Aborts because read-set validation failed.
    aborts_invalid,
    /// Aborts because the renumbering epoch advanced.
    aborts_epoch,
    /// Aborts requested explicitly by the user.
    aborts_explicit,
    /// Aborts of transactions doomed by another transaction's
    /// contention manager (priority policies).
    aborts_doomed,
    /// Doom flags set by priority contention managers (each one aborts
    /// some *other* transaction).
    dooms_issued,
    /// Times a retry loop escalated into exclusive serial mode after
    /// too many consecutive aborts (or past its deadline on the
    /// infallible path).
    serial_entries,
    /// Fallible retry loops that gave up because the atomic block's
    /// deadline passed (config `tx_deadline` or a per-call deadline).
    deadlines_exceeded,
    /// Fallible retry loops that gave up because the attempt budget
    /// (`max_retries`) was consumed by conflicts.
    retries_exhausted,
    /// Panics that unwound out of a transaction closure after the
    /// runtime rolled the transaction back (undo replayed, ownership
    /// released, registry deregistered).
    panics_unwound,
    /// Failpoint actions triggered (fault injection).
    failpoint_fires,
    /// Transactions killed mid-flight by a `Kill` failpoint (simulated
    /// thread death while holding ownership).
    txs_killed,
    /// Orphaned (killed) transactions rolled back and released by a
    /// concurrent transaction's recovery path.
    orphans_recovered,
    /// `OpenForRead` barrier executions.
    open_read_ops,
    /// `OpenForUpdate` barrier executions.
    open_update_ops,
    /// `LogForUndo` barrier executions.
    log_undo_ops,
    /// Read-log entries actually appended.
    read_entries,
    /// Read-log appends suppressed by the runtime filter.
    read_filtered,
    /// Undo-log entries actually appended.
    undo_entries,
    /// Undo-log appends suppressed by the runtime filter.
    undo_filtered,
    /// Successful ownership acquisitions (CAS to owned).
    acquires,
    /// Read-set validations performed (commit-time and incremental).
    validations,
    /// Incremental (mid-transaction) validations.
    mid_validations,
    /// Validations that returned through the commit-sequence-clock fast
    /// path without scanning any read-log entry.
    validation_fast_path,
    /// Read-log entries actually scanned by validations (a full pass
    /// scans the whole read log; the fast path scans none).
    validation_entries_scanned,
    /// Contention-manager spin iterations.
    cm_spins,
    /// Log entries removed or tombstoned by GC trimming.
    gc_trimmed_entries,
    /// Snapshot-mode reads satisfied by the O(1) `version <= read_ver`
    /// check (no read-set walk, no validation).
    snapshot_read_hits,
    /// Successful timestamp extensions: a too-new version triggered a
    /// read-set revalidation that advanced `read_ver` in place instead
    /// of aborting.
    ts_extensions,
    /// Timestamp extensions that found a genuine conflict and fell back
    /// to the abort path.
    extension_failures,
    /// Commits of transactions that made no updates (empty update and
    /// undo logs).
    readonly_commits,
    /// Aborts of transactions that had made no updates at rollback time
    /// (the numerator of the read-only abort rate).
    readonly_aborts,
    /// Commit-clock CAS attempts that lost the race and adopted the
    /// winner's value instead of retrying (GV6 `PassOnFail` mode). Zero
    /// in every other clock mode.
    clock_cas_failures,
    /// Retries of the per-stripe stamp-reservation CAS loop in
    /// `Deferred` mode (only possible when more threads than clock
    /// stripes share a home stripe). Zero in every other mode.
    clock_bump_retries,
    /// Snapshot-mode reads served from a version chain: the current
    /// version was newer than `read_ver` and the chain held the value
    /// current at `read_ver`, so the reader proceeded without a
    /// timestamp extension (`mv_depth > 0` only).
    mv_read_hits,
    /// Chain walks that found no entry covering `read_ver` (trimmed,
    /// evicted by the ring bound, or never retired); the read fell back
    /// to the timestamp-extension path (`mv_depth > 0` only).
    mv_chain_misses,
    /// Version-chain entries removed by GC trimming (dead objects and
    /// quiesced intervals no active `read_ver` can need).
    mv_trims,
    /// Decomposed `OpenForRead` executions under `snapshot_reads`: the
    /// paired data load cannot be sandwich-verified, so the transaction
    /// loses the abort-free `snapshot_clean` path. The compiled TxIL
    /// backend routes loads through the composed barrier instead; this
    /// counts the callers that still take the decomposed path.
    snapshot_decomposed_opens,
}

/// Live counters owned by an [`crate::Stm`]: an array of padded shards,
/// one picked per thread (see the module docs).
#[derive(Debug)]
pub struct StmStats {
    shards: Box<[StatShard]>,
    /// When false, every record call is a single early-return branch.
    enabled: bool,
}

impl Default for StmStats {
    fn default() -> StmStats {
        StmStats::new(true)
    }
}

impl StmStats {
    pub(crate) fn new(enabled: bool) -> StmStats {
        StmStats { shards: (0..STAT_SHARDS).map(|_| StatShard::default()).collect(), enabled }
    }

    /// True if record calls are actually counted.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The shard assigned to the calling thread.
    #[inline]
    fn shard(&self) -> &StatShard {
        // Round-robin thread assignment bounds aliasing: two threads
        // share a stripe only when more than `STAT_SHARDS` threads have
        // ever recorded, and relaxed atomics keep that correct anyway.
        &self.shards[SHARD_INDEX.with(|s| *s)]
    }

    /// Adds `n` to the counter selected by `counter` on this thread's
    /// shard. `counter` is a field projection (`|c| &c.commits`) so the
    /// call inlines to one branch plus one uncontended relaxed RMW.
    #[inline]
    pub(crate) fn add(&self, counter: impl FnOnce(&StatShard) -> &AtomicU64, n: u64) {
        if !self.enabled {
            return;
        }
        counter(self.shard()).fetch_add(n, Ordering::Relaxed);
    }
}

impl StmStatsSnapshot {
    /// Total aborts across all causes.
    #[must_use]
    pub fn aborts(&self) -> u64 {
        self.aborts_busy
            + self.aborts_invalid
            + self.aborts_epoch
            + self.aborts_explicit
            + self.aborts_doomed
    }

    /// Retry loops that gave up, whatever the budget that ran out
    /// (deadline or attempt count) — both paths share one give-up
    /// decision, so this is the complete count.
    #[must_use]
    pub fn give_ups(&self) -> u64 {
        self.deadlines_exceeded + self.retries_exhausted
    }

    /// Aborts per begun transaction (0 if none begun).
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        if self.begins == 0 {
            0.0
        } else {
            self.aborts() as f64 / self.begins as f64
        }
    }

    /// Fraction of read-log appends suppressed by the filter.
    #[must_use]
    pub fn read_filter_rate(&self) -> f64 {
        let total = self.read_entries + self.read_filtered;
        if total == 0 {
            0.0
        } else {
            self.read_filtered as f64 / total as f64
        }
    }

    /// Fraction of validations that skipped the read-log scan via the
    /// commit-sequence clock (0 if none ran).
    #[must_use]
    pub fn validation_fast_path_rate(&self) -> f64 {
        if self.validations == 0 {
            0.0
        } else {
            self.validation_fast_path as f64 / self.validations as f64
        }
    }

    /// Read-log entries scanned per committed transaction (0 if none
    /// committed).
    #[must_use]
    pub fn entries_scanned_per_commit(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.validation_entries_scanned as f64 / self.commits as f64
        }
    }

    /// Fraction of undo-log appends suppressed by the filter.
    #[must_use]
    pub fn undo_filter_rate(&self) -> f64 {
        let total = self.undo_entries + self.undo_filtered;
        if total == 0 {
            0.0
        } else {
            self.undo_filtered as f64 / total as f64
        }
    }

    /// Commit-clock CAS failures per commit-stamp claim (0 if none
    /// claimed). Commits and version-burning rollbacks each claim one
    /// stamp, so the denominator is `commits + readonly-ish burns`; we
    /// approximate it with `commits + aborts`, which upper-bounds the
    /// claim count and keeps the rate comparable across modes. The E5d
    /// headline: near zero for `Striped`/`Deferred`, where the hot
    /// paths never CAS a shared clock word.
    #[must_use]
    pub fn clock_cas_failure_rate(&self) -> f64 {
        let claims = self.commits + self.aborts();
        if claims == 0 {
            0.0
        } else {
            self.clock_cas_failures as f64 / claims as f64
        }
    }

    /// Aborts per read-only transaction outcome (0 if none finished).
    /// The E5c headline: with `snapshot_reads` on this is 0 for
    /// read-mostly workloads.
    #[must_use]
    pub fn readonly_abort_rate(&self) -> f64 {
        let total = self.readonly_commits + self.readonly_aborts;
        if total == 0 {
            0.0
        } else {
            self.readonly_aborts as f64 / total as f64
        }
    }
}

impl fmt::Display for StmStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tx: {} begun, {} committed, {} aborted ({:.1}%); barriers: {} open-read, \
             {} open-update, {} log-undo; filtered: {} read ({:.1}%), {} undo ({:.1}%); \
             validation: {} runs, {} fast-path ({:.1}%), {} entries scanned",
            self.begins,
            self.commits,
            self.aborts(),
            self.abort_rate() * 100.0,
            self.open_read_ops,
            self.open_update_ops,
            self.log_undo_ops,
            self.read_filtered,
            self.read_filter_rate() * 100.0,
            self.undo_filtered,
            self.undo_filter_rate() * 100.0,
            self.validations,
            self.validation_fast_path,
            self.validation_fast_path_rate() * 100.0,
            self.validation_entries_scanned,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_counters() {
        let stats = StmStats::default();
        stats.add(|c| &c.begins, 3);
        stats.add(|c| &c.commits, 2);
        stats.add(|c| &c.aborts_busy, 1);
        let snap = stats.snapshot();
        assert_eq!(snap.begins, 3);
        assert_eq!(snap.commits, 2);
        assert_eq!(snap.aborts(), 1);
        assert!((snap.abort_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn disabled_stats_record_nothing() {
        let stats = StmStats::new(false);
        assert!(!stats.is_enabled());
        stats.add(|c| &c.begins, 5);
        assert_eq!(stats.snapshot(), StmStatsSnapshot::default());
    }

    #[test]
    fn shards_are_padded_against_false_sharing() {
        assert_eq!(std::mem::align_of::<StatShard>(), 128);
        assert_eq!(std::mem::size_of::<StatShard>() % 128, 0);
    }

    #[test]
    fn cross_thread_increments_aggregate_exactly() {
        // Threads land on different shards; the aggregate must still be
        // the exact event total, same as the old single-cell counters.
        let stats = StmStats::default();
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for _ in 0..PER_THREAD {
                        stats.add(|c| &c.commits, 1);
                    }
                    stats.add(|c| &c.begins, PER_THREAD);
                });
            }
        });
        let snap = stats.snapshot();
        assert_eq!(snap.commits, THREADS as u64 * PER_THREAD);
        assert_eq!(snap.begins, THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn filter_rates() {
        let snap = StmStatsSnapshot {
            read_entries: 25,
            read_filtered: 75,
            undo_entries: 10,
            undo_filtered: 0,
            ..StmStatsSnapshot::default()
        };
        assert!((snap.read_filter_rate() - 0.75).abs() < 1e-9);
        assert_eq!(snap.undo_filter_rate(), 0.0);
    }

    #[test]
    fn validation_rates() {
        let snap = StmStatsSnapshot {
            commits: 4,
            validations: 10,
            validation_fast_path: 9,
            validation_entries_scanned: 20,
            ..StmStatsSnapshot::default()
        };
        assert!((snap.validation_fast_path_rate() - 0.9).abs() < 1e-9);
        assert!((snap.entries_scanned_per_commit() - 5.0).abs() < 1e-9);
        let empty = StmStatsSnapshot::default();
        assert_eq!(empty.validation_fast_path_rate(), 0.0);
        assert_eq!(empty.entries_scanned_per_commit(), 0.0);
    }

    #[test]
    fn readonly_abort_rate_counts_only_readonly_outcomes() {
        let snap = StmStatsSnapshot {
            readonly_commits: 3,
            readonly_aborts: 1,
            aborts_invalid: 50, // update-transaction aborts do not dilute the rate
            ..StmStatsSnapshot::default()
        };
        assert!((snap.readonly_abort_rate() - 0.25).abs() < 1e-9);
        assert_eq!(StmStatsSnapshot::default().readonly_abort_rate(), 0.0);
    }

    #[test]
    fn clock_cas_failure_rate_normalizes_by_claims() {
        let snap = StmStatsSnapshot {
            commits: 6,
            aborts_busy: 2,
            clock_cas_failures: 2,
            ..StmStatsSnapshot::default()
        };
        assert!((snap.clock_cas_failure_rate() - 0.25).abs() < 1e-9);
        assert_eq!(StmStatsSnapshot::default().clock_cas_failure_rate(), 0.0);
    }

    #[test]
    fn delta_since_subtracts() {
        let a = StmStatsSnapshot { begins: 10, commits: 8, ..Default::default() };
        let b = StmStatsSnapshot { begins: 4, commits: 3, ..Default::default() };
        let d = a.delta_since(&b);
        assert_eq!(d.begins, 6);
        assert_eq!(d.commits, 5);
    }

    #[test]
    fn rates_are_zero_when_empty() {
        let snap = StmStatsSnapshot::default();
        assert_eq!(snap.abort_rate(), 0.0);
        assert_eq!(snap.read_filter_rate(), 0.0);
    }

    #[test]
    fn display_mentions_key_counts() {
        let snap = StmStatsSnapshot { begins: 7, ..Default::default() };
        assert!(snap.to_string().contains("7 begun"));
    }
}
