//! Transactions: the decomposed barrier interface.
//!
//! A [`Transaction`] exposes exactly the operations the paper's compiler
//! emits after decomposition:
//!
//! | paper operation   | method                                        |
//! |-------------------|-----------------------------------------------|
//! | `OpenForRead`     | [`Transaction::open_for_read`]                |
//! | `OpenForUpdate`   | [`Transaction::open_for_update`]              |
//! | `LogForUndo`      | [`Transaction::log_for_undo`]                 |
//! | direct data access| [`Transaction::load_direct`] / [`Transaction::store_direct`] |
//!
//! The *monolithic* barriers every unoptimized access uses are the
//! compositions [`Transaction::read`] and [`Transaction::write`]. The
//! optimizer's job (crate `omt-opt`) is to replace compositions with the
//! minimal set of decomposed operations.
//!
//! # Direct update and zombies
//!
//! Updates happen in place; reads are optimistic and validated at
//! commit. Between a conflicting commit and this transaction's own
//! validation, reads can observe *inconsistent* states (a "zombie"
//! transaction). The paper relies on managed-runtime sandboxing; here,
//! [`StmConfig::validate_every`](crate::StmConfig) re-validates
//! periodically and the `omt-vm` interpreter re-validates at loop
//! back-edges. Native users must tolerate torn-but-typed values (all
//! heap data is tagged [`Word`]s, so this is safe, never UB).

use std::mem::ManuallyDrop;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use omt_heap::{ClassId, ObjRef, Word};

use omt_util::sched::{yield_point, yield_point_keyed};

use crate::cm::{CmDecision, TxCtl};
use crate::error::{ConflictKind, TxError, TxResult};
use crate::failpoint::{sites, FailAction};
use crate::filter::FilterKind;
use crate::logs::{ReadEntry, Savepoint, TxLogs, UndoEntry, UpdateEntry};
use crate::mv::MvEntry;
use crate::pool::{self, TxCtx};
use crate::schedpt;
use crate::stm::Stm;
use crate::word::{owned_bits, version_bits, StmWord, TxToken, MAX_UPDATE_ENTRIES};

/// Per-transaction operation counters, flushed into the global
/// [`crate::StmStats`] when the transaction finishes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TxCounters {
    /// `OpenForRead` executions.
    pub open_read_ops: u64,
    /// `OpenForUpdate` executions.
    pub open_update_ops: u64,
    /// `LogForUndo` executions.
    pub log_undo_ops: u64,
    /// Read-log entries appended.
    pub read_entries: u64,
    /// Read-log appends suppressed by the runtime filter.
    pub read_filtered: u64,
    /// Undo-log entries appended.
    pub undo_entries: u64,
    /// Undo-log appends suppressed by the runtime filter.
    pub undo_filtered: u64,
    /// Successful ownership acquisitions.
    pub acquires: u64,
    /// Validations run (including the commit-time one).
    pub validations: u64,
    /// Mid-transaction validations.
    pub mid_validations: u64,
    /// Validations that returned through the commit-sequence-clock fast
    /// path without scanning any read-log entry.
    pub validation_fast_path: u64,
    /// Read-log entries scanned by validations (full and partial
    /// passes; the fast path scans none).
    pub validation_entries_scanned: u64,
    /// Contention-manager spins.
    pub cm_spins: u64,
    /// Doom flags this transaction set on *other* transactions
    /// (priority contention management).
    pub dooms: u64,
    /// Snapshot-mode reads satisfied by the O(1) `version <= read_ver`
    /// check.
    pub snapshot_read_hits: u64,
    /// Successful timestamp extensions (a too-new version advanced
    /// `read_ver` via revalidation instead of aborting).
    pub ts_extensions: u64,
    /// Timestamp extensions that found a genuine conflict and aborted.
    pub extension_failures: u64,
    /// 1 if this transaction committed having made no updates.
    pub readonly_commits: u64,
    /// 1 if this transaction aborted having made no updates.
    pub readonly_aborts: u64,
    /// Commit-clock CAS attempts that lost their race (stamp claims
    /// and burns; `PassOnFail` adopts the winner's value instead of
    /// retrying, so this counts contention events, not extra spins).
    pub clock_cas_failures: u64,
    /// Per-stripe stamp-reservation CAS retries (`Deferred` mode;
    /// non-zero only when threads share a home stripe).
    pub clock_bump_retries: u64,
    /// Snapshot-mode reads served from a version chain
    /// (`mv_depth > 0`): a too-new version was resolved to the retired
    /// value current at `read_ver` instead of a timestamp extension.
    pub mv_read_hits: u64,
    /// Version-chain walks that found no entry covering `read_ver` and
    /// fell back to the timestamp-extension path.
    pub mv_chain_misses: u64,
    /// Decomposed `OpenForRead` executions under `snapshot_reads` (the
    /// paired separate load cannot be sandwich-verified, so each one
    /// costs the transaction its abort-free `snapshot_clean` path).
    pub snapshot_decomposed_opens: u64,
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum TxState {
    Active,
    Finished,
}

/// Transaction-lifetime handler list (boosting support, DESIGN.md
/// §4.12). Handlers are opaque one-shot closures; `Debug` reports only
/// the count.
#[derive(Default)]
struct Handlers(Vec<Box<dyn FnOnce() + 'static>>);

impl std::fmt::Debug for Handlers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Handlers({})", self.0.len())
    }
}

impl Handlers {
    /// Runs `handlers`, each under its own `catch_unwind`, so one
    /// panicking handler cannot starve the rest (a lock-release handler
    /// skipped here would wedge every future contender). The first
    /// captured panic resumes after all handlers ran — unless the
    /// thread is already unwinding (drop-during-panic), where a second
    /// panic would abort the process; there the payload is dropped.
    fn run(handlers: impl Iterator<Item = Box<dyn FnOnce() + 'static>>) {
        let mut first_panic = None;
        for h in handlers {
            if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(h)) {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            if !std::thread::panicking() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// An in-flight transaction. Obtained from [`Stm::begin`].
///
/// Dropping an unfinished transaction aborts it (rolling back all
/// in-place updates and releasing ownership), so early returns and
/// panics cannot leak ownership or torn state.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use omt_heap::{Heap, ClassDesc, Word};
/// use omt_stm::Stm;
///
/// let heap = Arc::new(Heap::new());
/// let class = heap.define_class(ClassDesc::with_var_fields("Acct", &["bal"]));
/// let acct = heap.alloc(class)?;
/// let stm = Stm::new(heap);
///
/// let mut tx = stm.begin();
/// let bal = tx.read(acct, 0)?.as_scalar().unwrap();
/// tx.write(acct, 0, Word::from_scalar(bal + 10))?;
/// tx.commit()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Transaction<'stm> {
    stm: &'stm Stm,
    serial: u64,
    token: TxToken,
    epoch: u64,
    ctl: Arc<TxCtl>,
    /// Pooled logs + filter; taken from the thread-local context pool
    /// at begin and returned in `Drop` (`ManuallyDrop` lets `Drop` move
    /// it out without a replacement allocation).
    ctx: ManuallyDrop<TxCtx>,
    counters: TxCounters,
    reads_since_validate: u32,
    /// Commit-sequence clock value under which the validated read-log
    /// prefix (`0..validated_watermark`) is known consistent: snapshot
    /// at begin, refreshed by every successful validation.
    clock_snapshot: u64,
    /// Acquisition-clock value snapshot, taken and refreshed together
    /// with `clock_snapshot`. The fast path additionally requires the
    /// acquisition clock to be quiescent — in a direct-update STM a
    /// foreign acquisition alone (no commit) already permits
    /// observable dirty in-place stores.
    acquire_snapshot: u64,
    /// Acquisition-clock bumps made by *this* transaction since
    /// `acquire_snapshot`. The clock is monotone, so
    /// `acquire_clock == acquire_snapshot + self_acquire_bumps` proves
    /// no *foreign* acquisition happened in between — our own
    /// acquisitions never invalidate our own reads (validation checks
    /// self-owned entries against the update log, and a foreign
    /// publish between our read and our acquisition would have bumped
    /// the commit clock).
    self_acquire_bumps: u64,
    /// Length of the read-log prefix covered by `clock_snapshot`.
    /// Entries past the watermark have not been re-checked since they
    /// were appended.
    validated_watermark: usize,
    /// False once any read-log entry observed a foreign owner: the
    /// clock cannot vouch for such an entry (ownership transfers do not
    /// bump it), so validation must fall back to scanning.
    clock_fast_path_ok: bool,
    /// Handlers to run (in order) after a successful commit's release
    /// phase, and (in reverse) after rollback — boosting registers
    /// abstract-lock releases in both and inverse semantic ops in the
    /// abort list. Exactly one list runs; the other is dropped unrun.
    commit_handlers: Handlers,
    abort_handlers: Handlers,
    /// Snapshot mode only: true while every read so far was
    /// sandwich-verified against `read_ver` (`clock_snapshot`) by the
    /// composed [`Transaction::read`]. A read-only transaction that
    /// stays clean commits without any validation — its reads are
    /// already known mutually consistent at `read_ver`. Cleared by the
    /// decomposed [`Transaction::open_for_read`] (the separate
    /// `load_direct` cannot be sandwich-verified) and by the
    /// foreign-owner fallback.
    snapshot_clean: bool,
    /// Exclusive upper bound on timestamp extension, `u64::MAX` until a
    /// read is served from a version chain (`StmConfig::mv_depth`). A
    /// chain hit returns the value current over `[from, until)`; this
    /// transaction is thereafter serialized *before* the commit that
    /// retired it, so `read_ver` must never advance to `until` or past
    /// it — [`Self::validate`] clamps its refreshed snapshot here and
    /// [`Self::open_for_update`] refuses to acquire (a pinned
    /// transaction publishing updates would be a lost update).
    ext_ceiling: u64,
    state: TxState,
}

/// Outcome of resolving one object's header through the snapshot-read
/// protocol (see [`Transaction::read`] in snapshot mode).
enum SnapObserved {
    /// Already open for update by this transaction; reads are subsumed.
    SelfOwned,
    /// Quiescent at a version covered by `read_ver` (raw header bits).
    Covered(u64),
    /// Foreign ownership outlasted the bounded wait; the caller logs
    /// the owned word and proceeds optimistically (legacy semantics —
    /// the entry cannot pass validation, so commit decides).
    Fallback(u64),
    /// The current version is newer than `read_ver` but the field's
    /// version chain (`StmConfig::mv_depth`) held the value current at
    /// `read_ver`: the read is served without extension or abort.
    /// Chain entries are immutable, so the value needs no seqlock
    /// sandwich, no read-log entry, and no validation; the resolver
    /// has already folded the entry's `until` into `ext_ceiling`.
    /// Only produced when the resolver was given a field (the composed
    /// read); the decomposed open has no field to look up.
    Chain(Word),
}

impl<'stm> Transaction<'stm> {
    pub(crate) fn new(
        stm: &'stm Stm,
        serial: u64,
        token: TxToken,
        epoch: u64,
        ctl: Arc<TxCtl>,
    ) -> Transaction<'stm> {
        let mut ctx = pool::acquire(stm.config().runtime_filter, stm.config().filter_bits);
        stm.registry().register(serial, ctl.clone(), &mut *ctx.logs);
        let clock_snapshot = stm.commit_clock();
        // Publish the initial read_ver so GC trimming never reclaims a
        // version-chain entry this transaction could still be served.
        ctl.read_ver.store(clock_snapshot, Ordering::Release);
        Transaction {
            stm,
            serial,
            token,
            epoch,
            ctl,
            ctx: ManuallyDrop::new(ctx),
            counters: TxCounters::default(),
            reads_since_validate: 0,
            clock_snapshot,
            acquire_snapshot: stm.acquire_clock(),
            self_acquire_bumps: 0,
            validated_watermark: 0,
            clock_fast_path_ok: true,
            commit_handlers: Handlers::default(),
            abort_handlers: Handlers::default(),
            snapshot_clean: true,
            ext_ceiling: u64::MAX,
            state: TxState::Active,
        }
    }

    /// Registers a handler to run exactly once if this transaction
    /// commits, after the release phase (so the transaction's updates
    /// are already published when the handler observes the heap).
    /// Handlers run in registration order. If the transaction aborts
    /// instead, the handler is dropped unrun. Transactional boosting
    /// (DESIGN.md §4.12) uses this to release abstract locks.
    ///
    /// Handlers run on the committing thread and may begin fresh
    /// (manual) transactions on the same [`Stm`]; they must not touch
    /// this transaction (it has already finished).
    ///
    /// # Panics
    ///
    /// Panics if the transaction already finished.
    pub fn on_commit(&mut self, f: impl FnOnce() + 'static) {
        self.assert_active();
        self.commit_handlers.0.push(Box::new(f));
    }

    /// Registers a handler to run exactly once if this transaction
    /// aborts, after rollback has restored the heap and released
    /// word-level ownership. Handlers run in **reverse** registration
    /// order: boosting registers each abstract-lock release *before*
    /// the semantic ops it guards, so in reverse the inverse ops run
    /// while the lock is still held and the release comes last — no
    /// observer can see un-undone state. If the transaction commits,
    /// the handler is dropped unrun. A `Kill` failpoint (simulated
    /// thread death) also runs abort handlers — see [`Self::kill`].
    ///
    /// # Panics
    ///
    /// Panics if the transaction already finished.
    pub fn on_abort(&mut self, f: impl FnOnce() + 'static) {
        self.assert_active();
        self.abort_handlers.0.push(Box::new(f));
    }

    /// This transaction's token (unique among concurrent transactions).
    pub fn token(&self) -> TxToken {
        self.token
    }

    /// Shared control block (priority, karma, doom flag).
    pub(crate) fn ctl_arc(&self) -> Arc<TxCtl> {
        self.ctl.clone()
    }

    /// The owning [`Stm`] (for in-crate layers like boosting that need
    /// the registry, contention manager, and config of the transaction
    /// they extend).
    pub(crate) fn stm(&self) -> &Stm {
        self.stm
    }

    /// True if another transaction's contention manager doomed this
    /// one; the next open or validate will return
    /// [`TxError::DOOMED`].
    pub fn is_doomed(&self) -> bool {
        self.ctl.is_doomed()
    }

    /// Returns [`TxError::DOOMED`] once a priority contention manager
    /// has doomed this transaction.
    fn check_doomed(&self) -> TxResult<()> {
        if self.ctl.is_doomed() {
            Err(TxError::DOOMED)
        } else {
            Ok(())
        }
    }

    /// Performs a failpoint action, if `site` is armed and fires.
    ///
    /// `Delay` spins then continues; `Abort` surfaces as an explicit
    /// conflict; `Kill` simulates thread death (logs parked, ownership
    /// left in place) and surfaces as `DOOMED` so retry loops stop
    /// using this transaction.
    fn hit_failpoint(&mut self, site: &'static str) -> TxResult<()> {
        let Some(action) = self.stm.failpoints().check(site) else {
            return Ok(());
        };
        self.stm.note_failpoint_fire();
        match action {
            FailAction::Delay(n) => {
                for _ in 0..n {
                    std::hint::spin_loop();
                }
                Ok(())
            }
            FailAction::Abort => Err(TxError::EXPLICIT),
            FailAction::Kill => {
                self.kill();
                Err(TxError::DOOMED)
            }
        }
    }

    /// Simulates the owning thread dying right now: the transaction
    /// stops, its logs are parked in the registry's orphan pool, and
    /// every object it owns stays owned until a concurrent transaction
    /// runs recovery.
    fn kill(&mut self) {
        self.state = TxState::Finished;
        yield_point(schedpt::KILL_PRE_PARK);
        // Kills are rare (fault injection only), so the replacement
        // allocation off the pooled fast path is fine.
        let logs = std::mem::replace(&mut self.ctx.logs, Box::new(TxLogs::new()));
        self.stm.registry().park_orphan(self.serial, self.token, logs);
        // Publish the death only after the logs are recoverable.
        self.ctl.killed.store(true, Ordering::Release);
        self.stm.flush_outcome(Outcome::Killed, &self.counters);
        // Semantic (boosting) state cannot be parked: abort handlers
        // are opaque closures, so no recovering thread could replay
        // them. Run them here instead — modeling a boosted runtime
        // whose semantic undo executes during recovery — in the same
        // reverse order as rollback, so inverse ops still run under
        // their abstract locks. Word-level recovery of the parked logs
        // proceeds independently (the boosted discipline keeps the
        // outer transaction off the map's words entirely).
        self.commit_handlers.0.clear();
        Handlers::run(std::mem::take(&mut self.abort_handlers.0).into_iter().rev());
    }

    /// Operation counters accumulated so far.
    pub fn counters(&self) -> TxCounters {
        self.counters
    }

    /// Whether this transaction runs under the snapshot-read protocol
    /// ([`StmConfig::snapshot_reads`](crate::StmConfig)). Callers that
    /// decompose barriers (the VM backend) must route loads through the
    /// composed [`Self::read`] when this is set: a bare data load after
    /// a decomposed open has no seqlock sandwich and no version-chain
    /// service, so it would silently surrender the snapshot guarantees.
    pub fn snapshot_reads(&self) -> bool {
        self.stm.config().snapshot_reads
    }

    /// Number of read-log entries.
    pub fn read_set_size(&self) -> usize {
        self.ctx.logs.read.len()
    }

    /// Number of update-log entries (owned objects).
    pub fn update_set_size(&self) -> usize {
        self.ctx.logs.update.len()
    }

    /// Number of undo-log entries.
    pub fn undo_log_size(&self) -> usize {
        self.ctx.logs.undo.len()
    }

    fn assert_active(&self) {
        assert!(self.state == TxState::Active, "transaction already finished");
    }

    /// `OpenForRead`: make `obj` readable by this transaction.
    ///
    /// Logs the object's STM word for commit-time validation. Reading an
    /// object currently owned by *another* transaction is permitted
    /// (optimism) — validation will abort this transaction if that
    /// matters.
    ///
    /// With [`StmConfig::snapshot_reads`](crate::StmConfig) enabled the
    /// header is resolved through the snapshot protocol instead
    /// (DESIGN.md §4.10): the version is accepted in O(1) when covered
    /// by `read_ver`, a too-new version triggers a timestamp extension
    /// rather than poisoning the read set, and foreign owners are
    /// waited out (bounded). The decomposed form still pairs with a
    /// separate [`Self::load_direct`] that cannot be sandwich-verified,
    /// so it clears `snapshot_clean` and keeps the periodic zombie
    /// containment (`validate_every`); the composed [`Self::read`] is
    /// the fully abort-free path.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::Conflict`] when incremental validation
    /// (config `validate_every`) — or, under snapshot reads, a failed
    /// timestamp extension — detects this transaction cannot commit, or
    /// [`TxError::DOOMED`] when a priority contention manager aborted
    /// it on another transaction's behalf.
    ///
    /// # Panics
    ///
    /// Panics if the transaction already finished.
    #[inline]
    pub fn open_for_read(&mut self, obj: ObjRef) -> TxResult<()> {
        self.assert_active();
        self.check_doomed()?;
        self.counters.open_read_ops += 1;
        self.ctl.karma.fetch_add(1, Ordering::Relaxed);

        if self.stm.config().snapshot_reads {
            return self.snapshot_open(obj);
        }

        if let Some(filter) = &mut self.ctx.filter {
            if filter.check_and_set(FilterKind::Read, obj.to_raw(), 0) {
                self.counters.read_filtered += 1;
                return self.tick_read_validation();
            }
        }

        yield_point_keyed(schedpt::OPEN_READ_PRE_HEADER, obj.to_raw() as usize);
        let observed = self.stm.heap().header_atomic(obj).load(Ordering::Acquire);
        if let StmWord::Owned { owner, .. } = StmWord::decode(observed) {
            if owner == self.token {
                // Already open for update by us: subsumed, nothing to log.
                return self.tick_read_validation();
            }
            // An entry that observed a foreign owner can never pass
            // validation, and the clocks cannot vouch for it: the
            // acquisition may predate our snapshots, and the owner's
            // later in-place stores move neither clock. The validation
            // fast path is off for the rest of this transaction.
            self.clock_fast_path_ok = false;
        }
        self.ctx.logs.read.push(ReadEntry { obj, observed });
        self.counters.read_entries += 1;
        self.tick_read_validation()
    }

    /// Decomposed snapshot-mode open: resolves the header through the
    /// snapshot protocol, but the separate data load that follows
    /// cannot be sandwich-verified, so the transaction loses the
    /// read-only validation skip (`snapshot_clean`).
    fn snapshot_open(&mut self, obj: ObjRef) -> TxResult<()> {
        self.snapshot_clean = false;
        self.counters.snapshot_decomposed_opens += 1;
        match self.snapshot_resolve(obj, None)? {
            SnapObserved::SelfOwned => {}
            SnapObserved::Covered(observed) => {
                self.counters.snapshot_read_hits += 1;
                self.log_read_entry(obj, observed);
            }
            SnapObserved::Fallback(observed) => self.log_read_entry(obj, observed),
            // Chain service needs a field to key the version store; a
            // decomposed open resolves the header alone, so the resolver
            // was called without one and can never produce this.
            SnapObserved::Chain(_) => unreachable!("chain service requires a field"),
        }
        self.tick_read_validation()
    }

    /// Appends a read-log entry, deduplicated through the runtime
    /// filter (snapshot paths resolve the header *before* consulting
    /// the filter, so the entry to suppress is already in hand).
    fn log_read_entry(&mut self, obj: ObjRef, observed: u64) {
        if let Some(filter) = &mut self.ctx.filter {
            if filter.check_and_set(FilterKind::Read, obj.to_raw(), 0) {
                self.counters.read_filtered += 1;
                return;
            }
        }
        self.ctx.logs.read.push(ReadEntry { obj, observed });
        self.counters.read_entries += 1;
    }

    /// Resolves `obj`'s header under the snapshot-read protocol
    /// (DESIGN.md §4.10). Loops until one of:
    ///
    /// - the word is ours ([`SnapObserved::SelfOwned`]);
    /// - the word is quiescent at a version covered by `read_ver`
    ///   ([`SnapObserved::Covered`]) — the O(1) acceptance test that
    ///   replaces the read-set walk;
    /// - a version *newer* than `read_ver` triggers a **timestamp
    ///   extension**: revalidate the read set against the current
    ///   clocks ([`Self::validate`] refreshes `clock_snapshot`, i.e.
    ///   advances `read_ver` in place) and re-examine. Only a genuinely
    ///   conflicting extension aborts. Extension terminates: under
    ///   snapshot mode every released version is a commit-clock
    ///   timestamp (commits stamp the post-bump value; aborts burn at a
    ///   fresh bump), so after a successful extension the offending
    ///   version is covered — at worst one extension per observed
    ///   foreign commit;
    /// - a foreign owner outlasts the bounded wait
    ///   ([`SnapObserved::Fallback`]): fall back to legacy optimistic
    ///   logging. The waiting itself recovers killed owners and
    ///   re-checks our doom flag, so orphans and doom cycles cannot
    ///   wedge us.
    ///
    /// With `chain_field` set (composed reads only — a decomposed open
    /// has no field to key the version store) and multi-versioning
    /// enabled, a too-new version first tries the object's version
    /// chain: a hit serves the old value at `read_ver` with no
    /// extension and no abort ([`SnapObserved::Chain`]), pinning
    /// `ext_ceiling` so later extensions cannot move `read_ver` past
    /// the served entry's validity interval. Chain service is refused
    /// once the transaction has taken ownership or logged undo (mixed
    /// old-snapshot reads and in-place writes would not be opaque).
    fn snapshot_resolve(
        &mut self,
        obj: ObjRef,
        chain_field: Option<u32>,
    ) -> TxResult<SnapObserved> {
        let mut spins = 0u32;
        loop {
            yield_point_keyed(schedpt::OPEN_READ_PRE_HEADER, obj.to_raw() as usize);
            let observed = self.stm.heap().header_atomic(obj).load(Ordering::Acquire);
            match StmWord::decode(observed) {
                StmWord::Owned { owner, .. } if owner == self.token => {
                    return Ok(SnapObserved::SelfOwned);
                }
                StmWord::Owned { owner, .. } => {
                    self.check_doomed()?;
                    if self.stm.registry().ctl_of(owner).is_some_and(|ctl| ctl.is_killed()) {
                        self.stm.recover_orphan(owner);
                        continue;
                    }
                    if spins >= self.stm.config().doom_wait_spins {
                        // The owner is alive but has sat on the word past
                        // the wait budget. Fall back to the legacy
                        // optimistic path: log the owned word (it can
                        // never pass validation, so commit decides) and
                        // surrender both the clock fast path and the
                        // read-only skip.
                        self.clock_fast_path_ok = false;
                        self.snapshot_clean = false;
                        return Ok(SnapObserved::Fallback(observed));
                    }
                    spins += 1;
                    self.counters.cm_spins += 1;
                    yield_point_keyed(schedpt::READ_OWNED_WAIT, obj.to_raw() as usize);
                    if spins.is_multiple_of(32) {
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
                word @ StmWord::Version(_) => {
                    if word.covered_by(self.clock_snapshot) {
                        return Ok(SnapObserved::Covered(observed));
                    }
                    // Version newer than read_ver: before reaching for a
                    // timestamp extension, try the version chain — a
                    // writer's commit retired the value that *was*
                    // current at read_ver, so a hit serves the read
                    // without moving the snapshot at all. Only pure
                    // readers qualify: once this transaction owns words
                    // or has undo to publish, its own writes must be
                    // ordered after read_ver advances, not behind it.
                    if let Some(field) = chain_field {
                        if self.stm.mv().enabled()
                            && self.ctx.logs.update.is_empty()
                            && self.ctx.logs.undo.is_empty()
                        {
                            if let Some((value, until)) =
                                self.stm.mv().lookup(obj, field, self.clock_snapshot)
                            {
                                self.counters.mv_read_hits += 1;
                                // The entry is valid for read_ver in
                                // [from, until); a later extension past
                                // until-1 would invalidate this read.
                                self.ext_ceiling = self.ext_ceiling.min(until - 1);
                                return Ok(SnapObserved::Chain(value));
                            }
                            self.counters.mv_chain_misses += 1;
                        }
                    }
                    // Pinned below the version we just met: an extension
                    // can never cover it without breaking an earlier
                    // chain-served read, so abort now and retry with a
                    // fresh snapshot.
                    if let StmWord::Version(v) = word {
                        if v > self.ext_ceiling {
                            self.counters.extension_failures += 1;
                            return Err(TxError::INVALID);
                        }
                    }
                    // Version newer than read_ver: extend the timestamp
                    // instead of aborting.
                    if self.stm.clocks().leading_stamps() {
                        // Deferred-mode stamps may lead the shared
                        // clock; raise it to the stamp first, so the
                        // extension's refreshed read_ver actually
                        // covers the version we just met (otherwise
                        // the extension could spin on a stamp the
                        // clock never reaches on its own).
                        yield_point_keyed(schedpt::CLOCK_PRE_RAISE, obj.to_raw() as usize);
                        if let StmWord::Version(v) = word {
                            self.stm.clocks().raise_to(v);
                        }
                    }
                    yield_point_keyed(schedpt::EXTEND_PRE_VALIDATE, obj.to_raw() as usize);
                    // Test-only regression mode: fast-forward read_ver
                    // *without* revalidating the read set, re-opening
                    // the torn-extension hole the schedule explorer
                    // proves it would catch.
                    #[cfg(test)]
                    if self.stm.test_unsound_extension_skips_revalidate() {
                        self.clock_snapshot = self.stm.commit_clock();
                        continue;
                    }
                    match self.validate() {
                        Ok(()) => {
                            self.counters.ts_extensions += 1;
                            // Loop: the fresh read_ver covers the version
                            // we saw (timestamps never exceed the clock —
                            // Deferred's leading stamps were raised into
                            // it above), though the header may have moved
                            // again.
                        }
                        Err(e) => {
                            self.counters.extension_failures += 1;
                            return Err(e);
                        }
                    }
                }
            }
        }
    }

    fn tick_read_validation(&mut self) -> TxResult<()> {
        if let Some(every) = self.stm.config().validate_every {
            self.reads_since_validate += 1;
            if self.reads_since_validate >= every {
                self.reads_since_validate = 0;
                self.counters.mid_validations += 1;
                return self.validate();
            }
        }
        Ok(())
    }

    /// `OpenForUpdate`: acquire exclusive ownership of `obj`.
    ///
    /// Idempotent for objects this transaction already owns. On success
    /// the object's STM word points at this transaction's update log and
    /// in-place stores become permissible (after [`Self::log_for_undo`]).
    ///
    /// # Errors
    ///
    /// Returns [`TxError::BUSY`] if another transaction owns the object
    /// and the contention policy gives up, or [`TxError::DOOMED`] if a
    /// priority contention manager aborted this transaction on another
    /// transaction's behalf (including mid-wait, which is what keeps
    /// doom cycles impossible).
    ///
    /// # Panics
    ///
    /// Panics if the transaction already finished, or if a single
    /// transaction opens more than 2³¹ objects for update.
    #[inline]
    pub fn open_for_update(&mut self, obj: ObjRef) -> TxResult<()> {
        self.assert_active();
        self.check_doomed()?;
        // Chain-pinned transactions are read-only: a write published at
        // a post-ceiling stamp against a pre-ceiling snapshot would be a
        // lost update (the chain served state some later commit already
        // replaced). Abort; the retry begins with a fresh read_ver and
        // an unpinned ceiling.
        if self.ext_ceiling != u64::MAX {
            return Err(TxError::INVALID);
        }
        self.counters.open_update_ops += 1;
        self.ctl.karma.fetch_add(1, Ordering::Relaxed);

        let header = self.stm.heap().header_atomic(obj);
        let mut spins = 0u32;
        // First iteration is the version-match fast path: one load, one
        // CAS, one log push. Contention falls into the `#[cold]`
        // arbitration routine and comes back around the loop.
        loop {
            yield_point_keyed(schedpt::OPEN_UPDATE_PRE_HEADER, obj.to_raw() as usize);
            let current = header.load(Ordering::Acquire);
            match StmWord::decode(current) {
                StmWord::Owned { owner, .. } if owner == self.token => return Ok(()),
                StmWord::Owned { owner, .. } => {
                    self.contend(obj, owner, &mut spins)?;
                }
                StmWord::Version(v) => {
                    let entry = self.ctx.logs.update.len();
                    assert!(
                        entry <= MAX_UPDATE_ENTRIES as usize,
                        "update log exceeds {MAX_UPDATE_ENTRIES} entries"
                    );
                    let owned = owned_bits(self.token, entry as u32);
                    if header
                        .compare_exchange(current, owned, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        // Announce the acquisition before any in-place
                        // store becomes possible (stores require this
                        // call to return first), so no concurrent
                        // validation can fast-path across our dirty
                        // data.
                        yield_point(schedpt::OPEN_UPDATE_PRE_ACQ_BUMP);
                        if self.stm.config().commit_sequence {
                            self.stm.bump_acquire_clock();
                            self.self_acquire_bumps += 1;
                        } else {
                            // The clock bump carries a trailing Release
                            // fence that orders the CAS before our
                            // upcoming (relaxed) in-place stores as seen
                            // by a validator's Acquire fence. With the
                            // clock knob off that ordering must still
                            // hold — a validator that read one of our
                            // dirty stores must not then load the
                            // header as still-unowned.
                            std::sync::atomic::fence(Ordering::Release);
                        }
                        self.ctx.logs.update.push(UpdateEntry {
                            obj,
                            original_version: v,
                            dead: false,
                            dirtied: false,
                        });
                        self.counters.acquires += 1;
                        self.hit_failpoint(sites::OPEN_UPDATE_AFTER_ACQUIRE)?;
                        return Ok(());
                    }
                    // Lost a race; retry (the new word may be ours never —
                    // we didn't install it — so loop to re-decode).
                }
            }
        }
    }

    /// One round of contention handling against `owner`, which was
    /// observed owning `obj`. Returns `Ok(())` to make the caller
    /// re-examine the header (the conflict may have evaporated), or an
    /// error to abort this transaction.
    #[cold]
    fn contend(&mut self, obj: ObjRef, owner: TxToken, spins: &mut u32) -> TxResult<()> {
        // A winner that dooms us mid-wait must be able to proceed, so
        // re-check our own doom flag on every round.
        self.check_doomed()?;

        let Some(other) = self.stm.registry().ctl_of(owner) else {
            // The owner finished between our header load and the
            // registry lookup; the header is released (or re-owned) by
            // now — re-examine it.
            yield_point_keyed(schedpt::CONTEND_WAIT, obj.to_raw() as usize);
            std::hint::spin_loop();
            return Ok(());
        };
        if other.is_killed() {
            // The owner's thread died holding the object: recover the
            // orphan (replay its undo log, release its ownership), then
            // re-examine the header.
            self.stm.recover_orphan(owner);
            return Ok(());
        }

        match self.stm.config().cm.arbitrate(&self.ctl, &other, *spins) {
            CmDecision::Wait => {
                *spins += 1;
                self.counters.cm_spins += 1;
                yield_point_keyed(schedpt::CONTEND_WAIT, obj.to_raw() as usize);
                std::hint::spin_loop();
                Ok(())
            }
            CmDecision::AbortSelf => Err(TxError::BUSY),
            CmDecision::AbortOther => {
                if !other.doomed.swap(true, Ordering::AcqRel) {
                    self.counters.dooms += 1;
                }
                // The victim only notices at its next open or validate;
                // wait for it to release, bounded so a descheduled (or
                // compute-bound) victim cannot wedge us.
                let header = self.stm.heap().header_atomic(obj);
                for _ in 0..self.stm.config().doom_wait_spins {
                    match StmWord::decode(header.load(Ordering::Acquire)) {
                        StmWord::Owned { owner: now, .. } if now == owner => {
                            if other.is_killed() {
                                self.stm.recover_orphan(owner);
                                return Ok(());
                            }
                            self.counters.cm_spins += 1;
                            yield_point_keyed(schedpt::CONTEND_WAIT, obj.to_raw() as usize);
                            std::hint::spin_loop();
                        }
                        _ => return Ok(()),
                    }
                }
                Err(TxError::BUSY)
            }
        }
    }

    /// `LogForUndo`: record the current value of `(obj, field)` so abort
    /// can restore it.
    ///
    /// Must be called (at least once per field) before
    /// [`Self::store_direct`] on an object this transaction owns; the
    /// compiler or the composed [`Self::write`] barrier guarantees this.
    ///
    /// # Panics
    ///
    /// Panics if the transaction already finished. In debug builds,
    /// panics if the object is not owned by this transaction.
    #[inline]
    pub fn log_for_undo(&mut self, obj: ObjRef, field: usize) {
        self.assert_active();
        self.counters.log_undo_ops += 1;
        debug_assert!(
            matches!(
                StmWord::decode(self.stm.heap().header_atomic(obj).load(Ordering::Relaxed)),
                StmWord::Owned { owner, .. } if owner == self.token
            ),
            "log_for_undo on object not owned by this transaction"
        );

        if let Some(filter) = &mut self.ctx.filter {
            if filter.check_and_set(FilterKind::Undo, obj.to_raw(), field as u32) {
                self.counters.undo_filtered += 1;
                return;
            }
        }
        // The object is about to be stored to in place: its update
        // entry must release with a *bumped* version even on abort, or a
        // concurrent optimistic reader could validate against the
        // restored header after having loaded our uncommitted value
        // (see `rollback`). The owned header points at the entry.
        if let StmWord::Owned { owner, entry } =
            StmWord::decode(self.stm.heap().header_atomic(obj).load(Ordering::Relaxed))
        {
            if owner == self.token {
                if let Some(e) = self.ctx.logs.update.get_mut(entry as usize) {
                    e.dirtied = true;
                }
            }
        }
        let old_bits = self.stm.heap().field_atomic(obj, field).load(Ordering::Relaxed);
        self.ctx.logs.undo.push(UndoEntry { obj, field: field as u32, old_bits });
        self.counters.undo_entries += 1;
    }

    /// Direct data read, without any barrier.
    ///
    /// Sound only after [`Self::open_for_read`] or
    /// [`Self::open_for_update`] on `obj` in this transaction (the
    /// compiler's obligation).
    pub fn load_direct(&self, obj: ObjRef, field: usize) -> Word {
        self.stm.heap().load(obj, field)
    }

    /// Direct data store, without any barrier.
    ///
    /// Sound only after [`Self::open_for_update`] and
    /// [`Self::log_for_undo`] for `(obj, field)` (the compiler's
    /// obligation).
    pub fn store_direct(&self, obj: ObjRef, field: usize, value: Word) {
        self.stm.heap().store(obj, field, value);
    }

    /// Monolithic read barrier: `OpenForRead` + direct load.
    ///
    /// With [`StmConfig::snapshot_reads`](crate::StmConfig) enabled this
    /// is the fully sandwich-verified path: the value returned is known
    /// consistent at `read_ver` the moment it is read, so a transaction
    /// built purely from composed reads commits with *no* validation at
    /// all and can only abort on a genuinely conflicting timestamp
    /// extension (never from validation races) — see DESIGN.md §4.10.
    ///
    /// # Errors
    ///
    /// See [`Self::open_for_read`].
    #[inline]
    pub fn read(&mut self, obj: ObjRef, field: usize) -> TxResult<Word> {
        if self.stm.config().snapshot_reads {
            return self.snapshot_read(obj, field);
        }
        self.open_for_read(obj)?;
        // The window between logging the header and loading the data is
        // where a foreign owner's in-place store can become the value
        // this transaction computes with; validation must catch that.
        yield_point_keyed(schedpt::READ_PRE_LOAD, obj.to_raw() as usize);
        Ok(self.load_direct(obj, field))
    }

    /// Composed snapshot-mode read: resolve the header, load the data,
    /// then re-check the header (a seqlock sandwich). A read that
    /// passes the sandwich is consistent at `read_ver`, so it is logged
    /// only *after* verifying and never needs the periodic zombie
    /// containment (`validate_every`) — a sandwiched read cannot be a
    /// zombie.
    fn snapshot_read(&mut self, obj: ObjRef, field: usize) -> TxResult<Word> {
        self.assert_active();
        self.check_doomed()?;
        self.counters.open_read_ops += 1;
        self.ctl.karma.fetch_add(1, Ordering::Relaxed);
        loop {
            match self.snapshot_resolve(obj, Some(field as u32))? {
                SnapObserved::SelfOwned => {
                    yield_point_keyed(schedpt::READ_PRE_LOAD, obj.to_raw() as usize);
                    return Ok(self.load_direct(obj, field));
                }
                SnapObserved::Chain(value) => {
                    // Served from an immutable retired version: nothing
                    // to sandwich, log, or validate — the resolver
                    // already pinned `ext_ceiling` to keep read_ver
                    // inside the entry's validity interval, and
                    // `snapshot_clean` stays intact (the read is
                    // consistent at read_ver by construction).
                    return Ok(value);
                }
                SnapObserved::Fallback(observed) => {
                    // Legacy optimistic read of a stuck foreign-owned
                    // word: log it (`snapshot_resolve` already cleared
                    // `snapshot_clean`, so commit-time validation — which
                    // always rejects owned entries — decides) and return
                    // the possibly-dirty value, exactly as the
                    // non-snapshot path would.
                    self.log_read_entry(obj, observed);
                    yield_point_keyed(schedpt::READ_PRE_LOAD, obj.to_raw() as usize);
                    return Ok(self.load_direct(obj, field));
                }
                SnapObserved::Covered(h1) => {
                    yield_point_keyed(schedpt::READ_PRE_LOAD, obj.to_raw() as usize);
                    let value = self.load_direct(obj, field);
                    // Close the sandwich. The Acquire fence upgrades the
                    // (relaxed) data load: it pairs with the Release
                    // fence every acquirer issues after its winning CAS
                    // (before any in-place store is possible), so if the
                    // data load observed a foreign store — dirty or
                    // committed — the header re-load below observes at
                    // least the foreign CAS and cannot equal `h1`.
                    std::sync::atomic::fence(Ordering::Acquire);
                    yield_point_keyed(schedpt::READ_PRE_RECHECK, obj.to_raw() as usize);
                    let h2 = self.stm.heap().header_atomic(obj).load(Ordering::Relaxed);
                    // Test-only regression mode: accept the first header
                    // unconditionally, re-opening the torn-read hole the
                    // schedule explorer proves the re-check closes.
                    #[cfg(test)]
                    let h2 = if self.stm.test_unsound_snapshot_skip_recheck() { h1 } else { h2 };
                    if h2 == h1 {
                        // ABA-free: h1 is a version word, and a version,
                        // once replaced, only recurs after a clean abort
                        // (data untouched — harmless) — dirty aborts and
                        // commits always move to a fresh stamp.
                        self.counters.snapshot_read_hits += 1;
                        self.log_read_entry(obj, h1);
                        return Ok(value);
                    }
                    // A writer moved the header mid-read; resolve afresh.
                }
            }
        }
    }

    /// Monolithic write barrier: `OpenForUpdate` + `LogForUndo` + direct
    /// store.
    ///
    /// # Errors
    ///
    /// See [`Self::open_for_update`].
    #[inline]
    pub fn write(&mut self, obj: ObjRef, field: usize, value: Word) -> TxResult<()> {
        self.open_for_update(obj)?;
        self.log_for_undo(obj, field);
        yield_point_keyed(schedpt::WRITE_PRE_STORE, obj.to_raw() as usize);
        self.store_direct(obj, field, value);
        Ok(())
    }

    /// Allocates a new object inside the transaction.
    ///
    /// The object starts at version 0 and is recorded in the allocation
    /// log (it becomes garbage if the transaction aborts). Accesses to
    /// it still need barriers *unless* the compiler proves it
    /// transaction-local (optimization level O4) — exactly the paper's
    /// division of labour.
    ///
    /// # Errors
    ///
    /// Returns [`TxError::HeapFull`] if allocation fails.
    pub fn alloc(&mut self, class: ClassId) -> TxResult<ObjRef> {
        self.assert_active();
        let obj = self.stm.heap().alloc(class)?;
        self.ctx.logs.allocs.push(obj);
        Ok(obj)
    }

    /// Validates the read set against the current heap state.
    ///
    /// With [`StmConfig::commit_sequence`](crate::StmConfig) enabled
    /// (the default), validation first consults two global clocks: the
    /// commit-sequence clock (bumped before any update is published)
    /// and the acquisition clock (bumped before any in-place store is
    /// possible). A transaction whose snapshots of both are unchanged
    /// — modulo its own acquisitions — and whose read log never
    /// observed a foreign owner knows every entry is still consistent
    /// and returns without touching the read log at all. This makes
    /// read-only commits O(1) and repeated re-validation nearly free
    /// under low write traffic. When either clock has moved, one full
    /// pass runs and refreshes the snapshots and the validated
    /// watermark; the doom flag and the renumbering epoch are always
    /// checked *before* the clock shortcut, so dooming and
    /// version-overflow epoch bumps can never be skipped.
    ///
    /// # Errors
    ///
    /// [`TxError::INVALID`] if a read object changed;
    /// [`TxError::EPOCH`] if the renumbering epoch advanced;
    /// [`TxError::DOOMED`] if a contention manager aborted this
    /// transaction on another's behalf.
    pub fn validate(&mut self) -> TxResult<()> {
        self.hit_failpoint(sites::VALIDATE_ENTRY)?;
        self.check_doomed()?;
        self.counters.validations += 1;
        // Order all preceding data loads before the validation loads
        // (seqlock-style LoadLoad fence). Also orders them before the
        // commit-clock load below.
        std::sync::atomic::fence(Ordering::Acquire);

        if self.stm.epoch() != self.epoch {
            return Err(TxError::EPOCH);
        }

        // Commit-sequence fast path. Soundness needs *two* quiescent
        // clocks in a direct-update STM:
        //
        // - Commit clock: bumped before the first header release-store
        //   of every update-publishing commit, so observing any
        //   published header implies observing the bump
        //   (release/acquire on the header, program order in the
        //   writer). Unchanged ⇒ no update this transaction could have
        //   seen was published since the snapshot.
        // - Acquisition clock: bumped after every successful ownership
        //   CAS, before the owner can issue an in-place store, with a
        //   release fence pairing with the acquire fence above.
        //   Observing an owner's dirty (uncommitted) store therefore
        //   implies observing the bump. Foreign-quiescent (the monotone
        //   clock advanced by exactly our own acquisitions) ⇒ no entry
        //   that observed a version word has been acquired — let alone
        //   dirtied — since the snapshot.
        //
        // Under the striped clock modes (DESIGN.md §4.11) the
        // acquisition "clock" is a vector of per-stripe monotone
        // counters and `acquire_clock()` is their sum. The argument is
        // unchanged: each stripe is monotone, so the sum is monotone
        // and can neither miss nor double-count a bump that completed
        // before the fence above; equality with `snapshot + self_bumps`
        // therefore still proves zero foreign acquisitions, and the
        // per-bump Release fence pairs with our Acquire fence exactly
        // as in the single-word case, whichever stripe the bump landed
        // in. The commit clock may lag claimed stamps in Deferred mode;
        // that weakens nothing here — the acquisition conjunct alone
        // rules out foreign effects on version-word entries, because
        // every publishing writer must first acquire.
        //
        // Entries that observed a foreign owner *at open time* are the
        // remaining case; they cleared `clock_fast_path_ok` when they
        // were appended, because the owner's later stores move neither
        // clock.
        let mut start = 0;
        let mut clock = None;
        if self.stm.config().commit_sequence {
            yield_point(schedpt::VALIDATE_PRE_CLOCKS);
            let now = self.stm.commit_clock();
            let acq_now = self.stm.acquire_clock();
            let acq_quiescent = acq_now == self.acquire_snapshot + self.self_acquire_bumps;
            // Test-only regression mode: re-open the pre-PR-3 hole where
            // the fast path consulted the commit clock alone, so the
            // schedule explorer can prove it catches that class of bug.
            #[cfg(test)]
            let acq_quiescent = acq_quiescent || self.stm.test_unsound_commit_clock_only();
            if now == self.clock_snapshot && acq_quiescent {
                if self.clock_fast_path_ok {
                    self.counters.validation_fast_path += 1;
                    self.validated_watermark = self.ctx.logs.read.len();
                    return Ok(());
                }
                // Clocks unchanged but a foreign owner was observed
                // since the watermark: the covered prefix is still
                // vouched for by the clocks; rescan only the tail
                // (which contains the offending entry and cannot
                // pass).
                start = self.validated_watermark;
            }
            clock = Some((now, acq_now));
        }

        yield_point(schedpt::VALIDATE_PRE_SCAN);
        let mut scanned = 0u64;
        let mut valid = true;
        let mut blocker = None;
        for entry in &self.ctx.logs.read[start..] {
            scanned += 1;
            let current = self.stm.heap().header_atomic(entry.obj).load(Ordering::Acquire);
            valid = match StmWord::decode(entry.observed) {
                StmWord::Version(v) => match StmWord::decode(current) {
                    StmWord::Version(cv) => cv == v,
                    StmWord::Owned { owner, entry: idx } => {
                        owner == self.token
                            && self
                                .ctx
                                .logs
                                .update
                                .get(idx as usize)
                                .is_some_and(|u| u.obj == entry.obj && u.original_version == v)
                    }
                },
                StmWord::Owned { owner, .. } if owner == self.token => current == entry.observed,
                StmWord::Owned { .. } => false,
            };
            if !valid {
                if let StmWord::Owned { owner, .. } = StmWord::decode(current) {
                    if owner != self.token {
                        blocker = Some(owner);
                    }
                }
                break;
            }
        }
        self.counters.validation_entries_scanned += scanned;
        if !valid {
            // If the failing entry is held by a *killed* owner, recover
            // the orphan before aborting. Read-only transactions never
            // call `open_for_update` (the other recovery trigger), so
            // without this an orphan squatting on a cold key would doom
            // every validation of its readers forever — a livelock.
            if let Some(owner) = blocker {
                if self.stm.registry().ctl_of(owner).is_some_and(|ctl| ctl.is_killed()) {
                    self.stm.recover_orphan(owner);
                }
            }
            return Err(TxError::INVALID);
        }
        if let Some((now, acq_now)) = clock {
            // The pass read both clocks *before* scanning: a commit or
            // acquisition that raced with the scan keeps the snapshot
            // behind and forces the next validation back onto the full
            // pass.
            //
            // The ceiling clamp keeps chain-served reads consistent: a
            // chain hit pinned `ext_ceiling` to its entry's last valid
            // read_ver, and the resolver aborts (never extends) on any
            // version past the ceiling, so every logged version entry
            // is ≤ the clamped snapshot — validation success at `now`
            // therefore proves consistency at the clamp too.
            self.clock_snapshot = now.min(self.ext_ceiling);
            self.acquire_snapshot = acq_now;
            self.self_acquire_bumps = 0;
            self.validated_watermark = self.ctx.logs.read.len();
            // Republish read_ver: GC trimming must keep every chain
            // entry this (possibly long-running) reader can still hit.
            self.ctl.read_ver.store(self.clock_snapshot, Ordering::Release);
        }
        Ok(())
    }

    /// Attempts to commit.
    ///
    /// Validates the read set while still holding ownership of every
    /// updated object, then releases each with an incremented version —
    /// the linearization point. On failure the transaction is rolled
    /// back (undo log replayed, ownership released at the original
    /// versions).
    ///
    /// # Errors
    ///
    /// [`TxError::INVALID`] or [`TxError::EPOCH`] when validation fails;
    /// the transaction is already aborted when the error returns.
    pub fn commit(mut self) -> TxResult<()> {
        self.assert_active();
        if let Err(e) = self.hit_failpoint(sites::COMMIT_BEFORE_VALIDATE) {
            let TxError::Conflict(kind) = e else { unreachable!("failpoints only conflict") };
            self.rollback(kind);
            return Err(e);
        }
        // Snapshot-mode read-only fast path (DESIGN.md §4.10): every
        // read was sandwich-verified consistent at `read_ver`, so the
        // transaction serializes at that timestamp with no validation
        // at all. Doom and the renumbering epoch still win — a doomed
        // transaction must abort for its contender, and renumbering
        // invalidates version observations wholesale.
        let snapshot_readonly = self.stm.config().snapshot_reads
            && self.snapshot_clean
            && self.ctx.logs.update.is_empty()
            && self.ctx.logs.undo.is_empty();
        if snapshot_readonly {
            if let Err(e) = self.check_doomed() {
                let TxError::Conflict(kind) = e else { unreachable!("doom is a conflict") };
                self.rollback(kind);
                return Err(e);
            }
            if self.stm.epoch() != self.epoch {
                self.rollback(ConflictKind::Epoch);
                return Err(TxError::EPOCH);
            }
        } else if let Err(e) = self.validate() {
            let TxError::Conflict(kind) = e else { unreachable!("validate only conflicts") };
            self.rollback(kind);
            return Err(e);
        }
        if let Err(e) = self.hit_failpoint(sites::COMMIT_BEFORE_RELEASE) {
            let TxError::Conflict(kind) = e else { unreachable!("failpoints only conflict") };
            self.rollback(kind);
            return Err(e);
        }

        // Release phase: publish every update with a bumped version.
        // Announce the publish on the commit-sequence clock *first*:
        // any transaction that observes one of the released headers
        // must also observe the bump (and so cannot skip validation
        // across this commit).
        let max_version = self.stm.config().max_version();
        let snapshot = self.stm.config().snapshot_reads;
        let mut publishes = false;
        let mut will_wrap = false;
        for entry in &self.ctx.logs.update {
            if !entry.dead {
                publishes = true;
                will_wrap |= !snapshot && entry.original_version + 1 > max_version;
            }
        }
        let mut stamp = None;
        if self.stm.config().commit_sequence && publishes {
            yield_point(schedpt::COMMIT_PRE_CLOCK_BUMP);
            let claim = self.stm.commit_stamp();
            self.counters.clock_cas_failures += claim.cas_failures;
            self.counters.clock_bump_retries += claim.bump_retries;
            let now = claim.value;
            if snapshot {
                // Timestamp release: every published header carries the
                // post-bump clock value, making `version <= read_ver` a
                // meaningful O(1) test for readers. One bump covers the
                // whole write set (the clock still counts publishing
                // commits exactly once). Config validation pins
                // `version_bits` to the full 62-bit space under
                // snapshot reads, so timestamps cannot wrap.
                assert!(now <= max_version, "commit-clock timestamp exhausted version space");
                stamp = Some(now);
            }
        }
        if will_wrap {
            // Version overflow: advance the global epoch *before* any
            // wrapped header becomes visible, so a concurrent
            // transaction that observes a wrapped version also fails
            // its epoch check (it aborts with EPOCH and restarts)
            // instead of matching the small number against a stale
            // observation. Bumping after the stores would leave a
            // window in which old and new version numbers are
            // indistinguishable.
            self.stm.bump_epoch();
        }
        let mv_on = self.stm.mv().enabled();
        for i in 0..self.ctx.logs.update.len() {
            let entry = self.ctx.logs.update[i];
            if entry.dead {
                continue;
            }
            let mut next = stamp.unwrap_or(entry.original_version + 1);
            if next > max_version {
                next = 0;
            }
            // Retire the displaced version *before* the release store
            // publishes the new one: a reader that meets the new header
            // must find the old (value, interval) already in the chain,
            // or the walk would miss and cost it an extension. The
            // reverse order is the race the chain-walk oracle sweeps.
            if mv_on {
                if let Some(until) = stamp {
                    self.retire_chain(entry.obj, entry.original_version, until);
                }
            }
            yield_point_keyed(schedpt::COMMIT_PRE_RELEASE, entry.obj.to_raw() as usize);
            self.stm.heap().header_atomic(entry.obj).store(version_bits(next), Ordering::Release);
        }
        self.finish(Outcome::Committed);
        // Commit handlers (boosting: abstract-lock releases) run after
        // the updates are published and the transaction has finished,
        // in registration order; the abort list is dropped unrun.
        self.abort_handlers.0.clear();
        Handlers::run(std::mem::take(&mut self.commit_handlers.0).into_iter());
        Ok(())
    }

    /// Retires `obj`'s displaced field values into the version store
    /// (commit release phase only — rollbacks restore in place and
    /// retire nothing). The *first* undo entry per field in log order
    /// holds the pre-transaction value, i.e. the one that was current
    /// over `[from, until)`; later entries for the same field are
    /// intermediate states no snapshot ever published. Fields the
    /// transaction never dirtied keep their chain history untouched —
    /// their current value is still the one the header's old version
    /// vouched for, and it remains readable in place.
    fn retire_chain(&self, obj: ObjRef, from: u64, until: u64) {
        if from >= until {
            // A freshly allocated object can carry version 0 == no
            // prior committed state worth serving; and a same-stamp
            // republish (impossible today, cheap to guard) would make
            // an empty interval.
            return;
        }
        let mut seen: Vec<u32> = Vec::new();
        for entry in &self.ctx.logs.undo {
            if entry.obj != obj || seen.contains(&entry.field) {
                continue;
            }
            seen.push(entry.field);
            self.stm.mv().retire(obj, entry.field, MvEntry { from, until, bits: entry.old_bits });
        }
    }

    /// Aborts the transaction explicitly, rolling back all updates.
    pub fn abort(mut self) {
        self.assert_active();
        self.rollback(ConflictKind::Explicit);
    }

    pub(crate) fn abort_with(mut self, kind: ConflictKind) {
        // Tolerates an already-finished transaction: the closure's
        // error may have come from a `Kill` failpoint, in which case
        // the logs are parked and there is nothing left to roll back.
        self.rollback(kind);
    }

    fn rollback(&mut self, kind: ConflictKind) {
        if self.state == TxState::Finished {
            return;
        }
        if let Some(action) = self.stm.failpoints().check(sites::ABORT_BEFORE_UNDO) {
            self.stm.note_failpoint_fire();
            match action {
                FailAction::Delay(n) => {
                    for _ in 0..n {
                        std::hint::spin_loop();
                    }
                }
                // Death at the top of rollback orphans the transaction
                // with its in-place updates unrestored — the worst
                // case the recovery path must handle.
                FailAction::Kill => {
                    self.kill();
                    return;
                }
                // Already aborting; injecting an abort is a no-op.
                FailAction::Abort => {}
            }
        }
        // Replay the undo log in reverse: duplicate entries (filter off)
        // then restore progressively older values, ending at the oldest.
        for entry in self.ctx.logs.undo.iter().rev() {
            yield_point_keyed(schedpt::ROLLBACK_PRE_UNDO, entry.obj.to_raw() as usize);
            self.stm
                .heap()
                .field_atomic(entry.obj, entry.field as usize)
                .store(entry.old_bits, Ordering::Relaxed);
        }
        // Release ownership. Dirtied entries release at a *bumped*
        // version even though the data is restored: between our
        // in-place store and this undo, a concurrent optimistic reader
        // may have loaded the uncommitted value, and its commit-time
        // validation compares versions only — releasing at the original
        // version would let that reader validate a value that never
        // committed (the abort-ABA the schedule explorer reproduces;
        // DESIGN.md §4.8). Burning a version on dirty aborts makes such
        // readers fail validation and retry. Clean (acquired but never
        // stored) entries restore the original version: nothing
        // observable happened.
        let max_version = self.stm.config().max_version();
        #[cfg(test)]
        let legacy_restore = self.stm.test_unsound_abort_restores_version();
        #[cfg(not(test))]
        let legacy_restore = false;
        let any_burn = !legacy_restore && self.ctx.logs.update.iter().any(|e| !e.dead && e.dirtied);
        // Under snapshot reads, burned headers carry a fresh commit-clock
        // timestamp: burning at `original + 1` could leave a version
        // *ahead* of the clock, and a reader extending to cover it could
        // never terminate (`read_ver` only reaches what the clock
        // reached). One bump stamps the whole dirty set, drawn before
        // any release store so a reader observing a burned header finds
        // the clock already at (or past) the stamp — or, under
        // Deferred's leading stamps, raises it there before extending.
        let stamp = if any_burn && self.stm.config().snapshot_reads {
            let claim = self.stm.burn_stamp();
            self.counters.clock_cas_failures += claim.cas_failures;
            self.counters.clock_bump_retries += claim.bump_retries;
            Some(claim.value)
        } else {
            None
        };
        let mut will_wrap = false;
        if !legacy_restore {
            for entry in &self.ctx.logs.update {
                will_wrap |= !entry.dead
                    && entry.dirtied
                    && stamp.unwrap_or(entry.original_version + 1) > max_version;
            }
        }
        if will_wrap {
            // As in commit: the epoch must advance before any wrapped
            // header is visible.
            self.stm.bump_epoch();
        }
        for entry in &self.ctx.logs.update {
            if entry.dead {
                continue;
            }
            let released = if entry.dirtied && !legacy_restore {
                let next = stamp.unwrap_or(entry.original_version + 1);
                if next > max_version {
                    0
                } else {
                    next
                }
            } else {
                entry.original_version
            };
            yield_point_keyed(schedpt::ROLLBACK_PRE_RELEASE, entry.obj.to_raw() as usize);
            self.stm
                .heap()
                .header_atomic(entry.obj)
                .store(version_bits(released), Ordering::Release);
        }
        self.finish(Outcome::Aborted(kind));
        // Abort handlers (boosting: inverse semantic ops, then abstract
        // lock releases) run after word-level rollback is complete, in
        // reverse registration order; the commit list is dropped unrun.
        self.commit_handlers.0.clear();
        Handlers::run(std::mem::take(&mut self.abort_handlers.0).into_iter().rev());
    }

    /// Creates a savepoint for closed-nested rollback.
    ///
    /// Clears the runtime filter: entries logged before the savepoint
    /// must not suppress re-logging afterwards, or a partial rollback
    /// could miss restores.
    pub fn savepoint(&mut self) -> Savepoint {
        self.assert_active();
        if let Some(filter) = &mut self.ctx.filter {
            filter.clear();
        }
        let mut sp = self.ctx.logs.savepoint();
        sp.commit_handler_len = self.commit_handlers.0.len();
        sp.abort_handler_len = self.abort_handlers.0.len();
        sp
    }

    /// Rolls back to `sp`: undoes stores, releases ownership acquired,
    /// and forgets reads logged since the savepoint.
    ///
    /// # Panics
    ///
    /// Panics if `sp` does not describe a prefix of the current logs
    /// (e.g. a savepoint from another transaction).
    pub fn rollback_to(&mut self, sp: Savepoint) {
        self.assert_active();
        assert!(
            sp.read_len <= self.ctx.logs.read.len()
                && sp.update_len <= self.ctx.logs.update.len()
                && sp.undo_len <= self.ctx.logs.undo.len()
                && sp.alloc_len <= self.ctx.logs.allocs.len()
                && sp.commit_handler_len <= self.commit_handlers.0.len()
                && sp.abort_handler_len <= self.abort_handlers.0.len(),
            "savepoint does not match this transaction's logs"
        );
        for entry in self.ctx.logs.undo[sp.undo_len..].iter().rev() {
            yield_point_keyed(schedpt::ROLLBACK_PRE_UNDO, entry.obj.to_raw() as usize);
            self.stm
                .heap()
                .field_atomic(entry.obj, entry.field as usize)
                .store(entry.old_bits, Ordering::Relaxed);
        }
        self.ctx.logs.undo.truncate(sp.undo_len);
        // Release ownership acquired since the savepoint, burning a
        // version on dirtied entries exactly as `rollback` does (a
        // foreign reader may have seen the rolled-away stores). Our own
        // surviving read entries that observed the original version stay
        // valid — we held exclusive ownership, so the restored state at
        // version v+1 is bit-identical to what version v named — and are
        // patched to the released version so the transaction does not
        // abort against its own savepoint rollback (`or_else` relies on
        // this).
        let max_version = self.stm.config().max_version();
        let any_burn = self.ctx.logs.update[sp.update_len..].iter().any(|e| !e.dead && e.dirtied);
        // Same burn policy as `rollback`: under snapshot reads, dirtied
        // entries release at one fresh commit-clock stamp so burned
        // versions never run ahead of what extension can reach.
        let stamp = if any_burn && self.stm.config().snapshot_reads {
            let claim = self.stm.burn_stamp();
            self.counters.clock_cas_failures += claim.cas_failures;
            self.counters.clock_bump_retries += claim.bump_retries;
            Some(claim.value)
        } else {
            None
        };
        let mut will_wrap = false;
        for entry in &self.ctx.logs.update[sp.update_len..] {
            will_wrap |= !entry.dead
                && entry.dirtied
                && stamp.unwrap_or(entry.original_version + 1) > max_version;
        }
        if will_wrap {
            self.stm.bump_epoch();
        }
        for i in sp.update_len..self.ctx.logs.update.len() {
            let entry = self.ctx.logs.update[i];
            if entry.dead {
                continue;
            }
            let released = if entry.dirtied {
                let next = stamp.unwrap_or(entry.original_version + 1);
                if next > max_version {
                    0
                } else {
                    next
                }
            } else {
                entry.original_version
            };
            yield_point_keyed(schedpt::ROLLBACK_PRE_RELEASE, entry.obj.to_raw() as usize);
            self.stm
                .heap()
                .header_atomic(entry.obj)
                .store(version_bits(released), Ordering::Release);
            if released != entry.original_version {
                let old = StmWord::Version(entry.original_version).encode();
                let new = StmWord::Version(released).encode();
                for read in self.ctx.logs.read[..sp.read_len].iter_mut() {
                    if read.obj == entry.obj && read.observed == old {
                        read.observed = new;
                    }
                }
            }
        }
        self.ctx.logs.update.truncate(sp.update_len);
        self.ctx.logs.read.truncate(sp.read_len);
        self.ctx.logs.allocs.truncate(sp.alloc_len);
        // The validated watermark must not extend past the surviving
        // read log, and a foreign-owner observation may have been
        // rolled away with the truncated tail — recompute eligibility
        // from the entries that remain.
        self.validated_watermark = self.validated_watermark.min(sp.read_len);
        self.clock_fast_path_ok =
            !self.ctx.logs.read.iter().any(|e| e.observed_foreign_owner(self.token));
        // Stale filter claims would be unsound after truncation.
        if let Some(filter) = &mut self.ctx.filter {
            filter.clear();
        }
        // Handlers registered since the savepoint belong to the rolled-
        // away region: its abort handlers run now (reverse order, as in
        // a full rollback — inverse ops fire under their still-held
        // abstract locks, releases last) and its commit handlers are
        // dropped, since the operations they would have sealed no
        // longer happen. Handlers registered before the savepoint
        // survive untouched.
        let aborted: Vec<_> = self.abort_handlers.0.drain(sp.abort_handler_len..).collect();
        self.commit_handlers.0.truncate(sp.commit_handler_len);
        Handlers::run(aborted.into_iter().rev());
    }

    /// Runs `f` as a closed-nested transaction: on `Err`, its effects
    /// are rolled back (the outer transaction survives) and the error is
    /// returned for the caller to decide.
    ///
    /// # Errors
    ///
    /// Propagates `f`'s error after rolling back the inner effects.
    pub fn nested<R>(
        &mut self,
        f: impl FnOnce(&mut Transaction<'stm>) -> TxResult<R>,
    ) -> TxResult<R> {
        let sp = self.savepoint();
        match f(self) {
            Ok(v) => Ok(v),
            Err(e) => {
                self.rollback_to(sp);
                Err(e)
            }
        }
    }

    /// The `orElse` combinator: tries `first`; if it *explicitly*
    /// retries ([`TxError::EXPLICIT`]), its effects are rolled back and
    /// `second` runs instead. Genuine conflicts propagate (the whole
    /// transaction must restart).
    ///
    /// # Errors
    ///
    /// Whatever the chosen alternative returns; an explicit retry from
    /// `second` propagates to the caller's retry loop.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use omt_heap::{Heap, ClassDesc, Word};
    /// use omt_stm::{Stm, TxError};
    ///
    /// let heap = Arc::new(Heap::new());
    /// let class = heap.define_class(ClassDesc::with_var_fields("Slot", &["v"]));
    /// let a = heap.alloc(class)?;
    /// let b = heap.alloc(class)?;
    /// heap.store(b, 0, Word::from_scalar(7));
    /// let stm = Stm::new(heap);
    ///
    /// // Take from `a` if non-empty, else from `b`.
    /// let taken = stm.atomically(|tx| {
    ///     tx.or_else(
    ///         |tx| {
    ///             let v = tx.read(a, 0)?.as_scalar().unwrap();
    ///             if v == 0 { return Err(TxError::EXPLICIT); }
    ///             tx.write(a, 0, Word::from_scalar(0))?;
    ///             Ok(v)
    ///         },
    ///         |tx| {
    ///             let v = tx.read(b, 0)?.as_scalar().unwrap();
    ///             tx.write(b, 0, Word::from_scalar(0))?;
    ///             Ok(v)
    ///         },
    ///     )
    /// });
    /// assert_eq!(taken, 7);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn or_else<R>(
        &mut self,
        first: impl FnOnce(&mut Transaction<'stm>) -> TxResult<R>,
        second: impl FnOnce(&mut Transaction<'stm>) -> TxResult<R>,
    ) -> TxResult<R> {
        match self.nested(first) {
            Err(TxError::Conflict(ConflictKind::Explicit)) => second(self),
            other => other,
        }
    }

    fn finish(&mut self, outcome: Outcome) {
        // A transaction that made no updates (empty update and undo
        // logs) is read-only; the E5c experiment compares read-only
        // abort rates across snapshot modes, so count in every mode.
        if self.ctx.logs.update.is_empty() && self.ctx.logs.undo.is_empty() {
            match outcome {
                Outcome::Committed => self.counters.readonly_commits = 1,
                Outcome::Aborted(_) => self.counters.readonly_aborts = 1,
                Outcome::Killed => {}
            }
        }
        self.state = TxState::Finished;
        self.stm.registry().unregister(self.serial, self.token);
        self.stm.flush_outcome(outcome, &self.counters);
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum Outcome {
    Committed,
    Aborted(ConflictKind),
    /// A `Kill` failpoint simulated thread death; the transaction
    /// neither committed nor rolled back (recovery does that later).
    Killed,
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        if self.state == TxState::Active {
            self.rollback(ConflictKind::Explicit);
        }
        // Recycle the logs + filter through the thread-local pool so the
        // next transaction on this thread starts without allocating.
        let ctx = unsafe { ManuallyDrop::take(&mut self.ctx) };
        pool::release(ctx);
    }
}
