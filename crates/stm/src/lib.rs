//! # omt-stm — the PLDI 2006 direct-access STM
//!
//! This crate is the core of the reproduction of *"Optimizing memory
//! transactions"* (Harris, Plesko, Shinnar, Tarditi — PLDI 2006): a
//! software transactional memory in which
//!
//! - transactions **update objects in place** (no shadow copies or write
//!   buffers), rolling back from an **undo log** on abort;
//! - writers take **encounter-time exclusive ownership** of objects via a
//!   single-word compare-and-swap on the object's header;
//! - readers are **optimistic**, logging per-object version numbers that
//!   are validated at commit;
//! - the barrier interface is **decomposed** into `OpenForRead`,
//!   `OpenForUpdate`, `LogForUndo`, and raw data accesses, so a compiler
//!   (crate `omt-opt`) can optimize barriers like ordinary code;
//! - a per-transaction **runtime filter** suppresses duplicate log
//!   entries that static analysis cannot remove;
//! - transaction logs participate in **garbage collection**: undo-log
//!   old values are roots and entries for dead objects are trimmed.
//!
//! Entry points: [`Stm::new`] / [`Stm::with_config`], then either the
//! composed [`Stm::atomically`] retry loop or manual [`Stm::begin`] /
//! [`Transaction::commit`] for decomposed-barrier callers like the
//! `omt-vm` interpreter.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use omt_heap::{Heap, ClassDesc, Word};
//! use omt_stm::{Stm, StmConfig};
//!
//! let heap = Arc::new(Heap::new());
//! let counter = heap.define_class(ClassDesc::with_var_fields("Counter", &["n"]));
//! let c = heap.alloc(counter)?;
//! let stm = Stm::with_config(heap.clone(), StmConfig::default());
//!
//! // 4 threads × 1000 increments, serializably.
//! std::thread::scope(|scope| {
//!     for _ in 0..4 {
//!         scope.spawn(|| {
//!             for _ in 0..1000 {
//!                 stm.atomically(|tx| {
//!                     let n = tx.read(c, 0)?.as_scalar().unwrap();
//!                     tx.write(c, 0, Word::from_scalar(n + 1))
//!                 });
//!             }
//!         });
//!     }
//! });
//! assert_eq!(heap.load(c, 0).as_scalar(), Some(4000));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod boost;
mod clock;
pub mod cm;
mod config;
mod error;
pub mod failpoint;
mod filter;
mod logs;
mod mv;
mod pool;
mod registry;
pub mod schedpt;
mod stats;
mod stm;
mod tx;
mod word;

#[cfg(test)]
mod tests;

pub use boost::{AbstractLockTable, BoostLockStats};
pub use cm::{CmDecision, CmPolicy, ContentionManager, TxCtl};
pub use config::{ClockMode, StmConfig};
pub use error::{ConflictKind, RetryExhausted, TxError, TxResult};
pub use failpoint::{FailAction, Failpoints, Trigger};
pub use logs::Savepoint;
pub use registry::TxRegistry;
pub use stats::{StmStats, StmStatsSnapshot};
pub use stm::Stm;
pub use tx::{Transaction, TxCounters};
pub use word::{StmWord, TxToken, MAX_UPDATE_ENTRIES, MAX_VERSION};
