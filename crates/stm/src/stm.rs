//! The STM runtime: transaction management, the retry loop, and the
//! serial-mode fallback gate.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use omt_heap::{GcParticipant, Heap};
use omt_util::pad::CachePadded;
use omt_util::sched::{block_until, yield_point};
use omt_util::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::clock::{Clocks, Stamp};
use crate::cm::TxCtl;
use crate::config::{ClockMode, StmConfig};
use crate::error::{ConflictKind, RetryExhausted, TxError, TxResult};
use crate::failpoint::Failpoints;
use crate::mv::MvStore;
use crate::registry::TxRegistry;
use crate::stats::{StmStats, StmStatsSnapshot};
use crate::tx::{Outcome, Transaction, TxCounters};
use crate::word::TxToken;

/// A direct-access software transactional memory over an
/// [`omt_heap::Heap`].
///
/// One `Stm` instance manages any number of concurrent transactions on
/// the heap it wraps. Share it across threads behind an [`Arc`] (or with
/// scoped threads).
///
/// # Examples
///
/// Transfer between two accounts with automatic retry:
///
/// ```
/// use std::sync::Arc;
/// use omt_heap::{Heap, ClassDesc, Word};
/// use omt_stm::Stm;
///
/// let heap = Arc::new(Heap::new());
/// let class = heap.define_class(ClassDesc::with_var_fields("Acct", &["bal"]));
/// let a = heap.alloc(class)?;
/// let b = heap.alloc(class)?;
/// let stm = Stm::new(heap.clone());
/// heap.store(a, 0, Word::from_scalar(100));
///
/// stm.atomically(|tx| {
///     let bal_a = tx.read(a, 0)?.as_scalar().unwrap();
///     let bal_b = tx.read(b, 0)?.as_scalar().unwrap();
///     tx.write(a, 0, Word::from_scalar(bal_a - 30))?;
///     tx.write(b, 0, Word::from_scalar(bal_b + 30))?;
///     Ok(())
/// });
/// assert_eq!(heap.load(b, 0).as_scalar(), Some(30));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Stm {
    heap: Arc<Heap>,
    config: StmConfig,
    /// Global renumbering epoch; bumped when a version number wraps.
    /// Padded so this occasionally-written word never false-shares
    /// with the clocks or the allocation counters around it.
    epoch: CachePadded<AtomicU64>,
    /// The commit-sequence / acquisition clock pair, in the
    /// [`StmConfig::clock_mode`]-selected implementation (see
    /// [`crate::clock`] and DESIGN.md §4.11). The commit side is
    /// bumped (or a stamp claimed) by every transaction that publishes
    /// updates, at the *start* of its release phase; the acquisition
    /// side by every successful `open_for_update` CAS, *before* the
    /// acquiring transaction can issue any in-place store. In a
    /// direct-update STM an uncommitted in-place store is observable
    /// without any commit having happened, so the commit clock alone
    /// cannot vouch for a read set; the validation fast path requires
    /// *both* clocks to be quiescent (see [`Transaction::validate`]
    /// and DESIGN.md §4.7).
    clocks: Clocks,
    next_token: AtomicU32,
    next_serial: AtomicU64,
    registry: TxRegistry,
    /// Bounded per-word version chains (DESIGN.md §4.13); inert (and
    /// zero-cost on every hot path) unless [`StmConfig::mv_depth`] > 0.
    mv: MvStore,
    stats: Arc<StmStats>,
    failpoints: Failpoints,
    /// Serial-mode gate. Every retry-loop attempt holds it shared; a
    /// transaction that escalates to serial mode holds it exclusively,
    /// so it runs with no retry-loop transaction in flight.
    gate: RwLock<()>,
    /// Writers queued on the gate. Shared entrants yield while this is
    /// non-zero, giving escalated transactions priority (std's `RwLock`
    /// does not promise writer preference).
    gate_waiting: AtomicUsize,
    /// Test-only unsoundness knob: validation's fast path consults the
    /// commit-sequence clock *alone*, reverting the PR 3 two-clock fix.
    /// Exists so the schedule explorer can re-derive that bug's
    /// counterexample as a regression oracle.
    #[cfg(test)]
    test_unsound_commit_clock_only: std::sync::atomic::AtomicBool,
    /// Test-only unsoundness knob: abort releases dirtied entries at
    /// their *original* version instead of burning one, reverting this
    /// PR's abort-ABA fix (see `UpdateEntry::original_version`).
    #[cfg(test)]
    test_unsound_abort_restores_version: std::sync::atomic::AtomicBool,
    /// Test-only unsoundness knob: the snapshot-mode composed `read`
    /// skips the header re-check that closes its seqlock sandwich,
    /// accepting whatever the data load returned. Exists so the
    /// schedule explorer can demonstrate the zombie commit that the
    /// re-check prevents (a read-only snapshot transaction commits an
    /// aborting writer's in-place store).
    #[cfg(test)]
    test_unsound_snapshot_skip_recheck: std::sync::atomic::AtomicBool,
    /// Test-only unsoundness knob: timestamp extension advances
    /// `read_ver` to the current clock *without* revalidating the read
    /// set. Exists so the schedule explorer can demonstrate the torn
    /// snapshot that the revalidation prevents.
    #[cfg(test)]
    test_unsound_extension_skips_revalidate: std::sync::atomic::AtomicBool,
}

/// Per-atomic-block state carried across retries: the age priority is
/// pinned to the *first* attempt and karma accumulates, so contention
/// managers see a transaction's full history, not just its latest
/// incarnation.
struct AttemptSeed {
    priority: u64,
    karma: u64,
}

/// Holder of the serial-mode gate for one attempt.
enum GateGuard<'a> {
    Shared(#[allow(dead_code)] RwLockReadGuard<'a, ()>),
    Exclusive(#[allow(dead_code)] RwLockWriteGuard<'a, ()>),
}

/// The give-up budget of one retry loop — the *single* decision point
/// shared by every entry path, so the attempt counter, the deadline,
/// and the give-up statistics live in one place instead of per-caller
/// bespoke counters.
///
/// - [`Stm::atomically`] runs an *infallible* budget: it never gives
///   up, but a configured deadline forces escalation into exclusive
///   serial mode (which cannot lose a conflict race), bounding its
///   completion time gracefully.
/// - [`Stm::try_atomically`] / [`Stm::try_atomically_within`] run a
///   *fallible* budget: attempt count and deadline both end the loop
///   with a typed [`RetryExhausted`].
#[derive(Debug, Clone, Copy)]
struct RetryBudget {
    /// Extra attempts allowed after the first (`None` = unbounded).
    max_attempts: Option<u32>,
    /// Absolute give-up time (`None` = no deadline).
    deadline: Option<Instant>,
    /// Whether running out of budget surfaces as an error (`true`) or
    /// as forced serial-mode escalation (`false`).
    fallible: bool,
}

impl RetryBudget {
    fn past_deadline(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

impl Stm {
    /// Creates an STM over `heap` with the default configuration.
    pub fn new(heap: Arc<Heap>) -> Stm {
        Stm::with_config(heap, StmConfig::default())
    }

    /// Creates an STM with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`StmConfig::validate`]).
    pub fn with_config(heap: Arc<Heap>, config: StmConfig) -> Stm {
        config.validate();
        let stats: Arc<StmStats> = Arc::new(StmStats::new(config.record_stats));
        Stm {
            heap,
            config,
            epoch: CachePadded::new(AtomicU64::new(0)),
            clocks: Clocks::new(config.clock_mode),
            next_token: AtomicU32::new(1),
            next_serial: AtomicU64::new(1),
            registry: TxRegistry::new(stats.clone()),
            mv: MvStore::new(config.mv_depth),
            stats,
            failpoints: Failpoints::new(),
            gate: RwLock::new(()),
            gate_waiting: AtomicUsize::new(0),
            #[cfg(test)]
            test_unsound_commit_clock_only: std::sync::atomic::AtomicBool::new(false),
            #[cfg(test)]
            test_unsound_abort_restores_version: std::sync::atomic::AtomicBool::new(false),
            #[cfg(test)]
            test_unsound_snapshot_skip_recheck: std::sync::atomic::AtomicBool::new(false),
            #[cfg(test)]
            test_unsound_extension_skips_revalidate: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// The underlying heap.
    pub fn heap(&self) -> &Arc<Heap> {
        &self.heap
    }

    /// The active configuration.
    pub fn config(&self) -> &StmConfig {
        &self.config
    }

    /// Snapshot of the global statistics.
    pub fn stats(&self) -> StmStatsSnapshot {
        self.stats.snapshot()
    }

    /// The fault-injection registry (see [`crate::failpoint`]). Arm
    /// sites here before running workloads under test.
    pub fn failpoints(&self) -> &Failpoints {
        &self.failpoints
    }

    pub(crate) fn note_failpoint_fire(&self) {
        self.stats.add(|c| &c.failpoint_fires, 1);
    }

    /// The registry of in-flight transactions (also the STM's
    /// [`GcParticipant`]).
    pub fn registry(&self) -> &TxRegistry {
        &self.registry
    }

    /// This STM as a GC participant, to pass to
    /// [`omt_heap::Heap::collect`]. Covers both the in-flight
    /// transaction logs (via the registry) and the version chains:
    /// chain entries keep their referents alive until trimmed, and the
    /// trim itself rides the collection's quiescent window (see
    /// DESIGN.md §4.13).
    pub fn gc_participant(&self) -> &dyn GcParticipant {
        self
    }

    /// The multi-version store (inert at `mv_depth = 0`).
    pub(crate) fn mv(&self) -> &MvStore {
        &self.mv
    }

    /// Current renumbering epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    pub(crate) fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// The clock pair (see [`crate::clock`]).
    pub(crate) fn clocks(&self) -> &Clocks {
        &self.clocks
    }

    /// The clock organization this runtime was built with (see
    /// [`ClockMode`] and DESIGN.md §4.11).
    pub fn clock_mode(&self) -> ClockMode {
        self.clocks.mode()
    }

    /// Current commit-sequence clock (number of update-publishing
    /// release phases started so far; under
    /// [`crate::ClockMode::Deferred`] the lazily-raised lower bound on
    /// claimed stamps).
    pub fn commit_clock(&self) -> u64 {
        self.clocks.commit_now()
    }

    /// Claims the stamp for an update-publishing release phase. Must
    /// happen *before* the first header release-store so that any
    /// transaction observing a published header also observes the
    /// claim (writer program order + release/acquire on the header),
    /// and therefore never takes the validation fast path across this
    /// commit. Under [`StmConfig::snapshot_reads`] the returned value
    /// is also the *timestamp* the release phase stamps into every
    /// published header (see DESIGN.md §4.10). The returned [`Stamp`]
    /// carries the claim's contention counts for the caller to fold
    /// into its [`TxCounters`].
    pub(crate) fn commit_stamp(&self) -> Stamp {
        self.clocks.commit_stamp()
    }

    /// Draws a fresh commit-clock timestamp for *burning* dirtied
    /// entries on the snapshot-mode abort path. A burned version must
    /// be reachable by extension: a snapshot reader that meets a
    /// burned header extends its `read_ver` to at least the burn
    /// value, which the clock itself has already reached — or, under
    /// [`crate::ClockMode::Deferred`]'s leading stamps, which the
    /// reader first raises the clock to. Claiming a stamp on abort is
    /// acceptable because aborts of dirtied writers are the rare path.
    pub(crate) fn burn_stamp(&self) -> Stamp {
        self.clocks.commit_stamp()
    }

    /// Current acquisition clock (number of successful ownership
    /// acquisitions so far, while [`StmConfig::commit_sequence`] is
    /// enabled). In the striped modes this sums the per-thread
    /// stripes; the sum is monotone, which is all the validation fast
    /// path needs (see [`crate::clock`]).
    pub fn acquire_clock(&self) -> u64 {
        self.clocks.acquire_now()
    }

    /// Announces a successful ownership acquisition. Runs *after* the
    /// acquiring CAS and *before* `open_for_update` returns, so no
    /// in-place store can precede it. Two orderings matter:
    ///
    /// - CAS-then-bump (`AcqRel` on both): a validator whose `Acquire`
    ///   load observes the bump also observes the `Owned` header,
    ///   so a read-log scan under that clock value cannot miss the
    ///   acquisition.
    /// - The trailing `Release` fence (inside
    ///   [`Clocks::bump_acquire`]) pairs with the `Acquire` fence at
    ///   the top of [`Transaction::validate`]: a validator that
    ///   observed any of the owner's subsequent (relaxed) in-place
    ///   stores must then also observe the bump — in whichever stripe
    ///   it landed — and therefore never takes the fast path across
    ///   uncommitted data.
    pub(crate) fn bump_acquire_clock(&self) {
        self.clocks.bump_acquire();
    }

    /// Begins a transaction.
    ///
    /// Manual transactions do not participate in the serial-mode gate:
    /// only [`Stm::atomically`] / [`Stm::try_atomically`] attempts are
    /// excluded when some retry loop escalates to serial mode.
    pub fn begin(&self) -> Transaction<'_> {
        self.begin_with(None)
    }

    fn begin_with(&self, seed: Option<&AttemptSeed>) -> Transaction<'_> {
        self.stats.add(|c| &c.begins, 1);
        let serial = self.next_serial.fetch_add(1, Ordering::Relaxed);
        // Reuse-safe token allocation (sound in release builds, unlike
        // the debug-only collision panic it replaced). The 32-bit
        // counter wraps after 2³² begins; handing out a token that a
        // live transaction still holds would let two transactions treat
        // each other's ownership records as their own, corrupting the
        // heap far from the cause. Instead of assuming wraps never
        // overtake a live transaction, redraw: skip any candidate whose
        // token is still registered (and token 0, which the abstract-
        // lock table reserves as its "free" encoding). The loop
        // terminates because live transactions are finitely many —
        // far fewer than 2³² (each holds a registry slot) — so some
        // candidate is always free.
        let token = loop {
            let raw = self.next_token.fetch_add(1, Ordering::Relaxed);
            if raw == 0 {
                continue;
            }
            let candidate = TxToken(raw);
            if self.registry.ctl_of(candidate).is_none() {
                break candidate;
            }
            // A wrap overtook a live transaction; redraw. Note the
            // registry check races benignly: a live entry can only be
            // *ours* once registered, and registration happens after
            // this loop, so a candidate observed free stays free until
            // we register it (tokens advance monotonically — no other
            // thread can draw the same raw value without wrapping
            // another full 2³² draws first, and such a double-wrap
            // while this begin is in flight is beyond any physical
            // machine).
        };
        let (priority, karma) = match seed {
            Some(s) => (s.priority, s.karma),
            None => (serial, 0),
        };
        let ctl = Arc::new(TxCtl::new(token, priority, karma));
        Transaction::new(self, serial, token, self.epoch(), ctl)
    }

    /// Runs `f` transactionally, retrying on conflicts with randomized
    /// exponential backoff, until it commits.
    ///
    /// After `serial_after_aborts` consecutive failed attempts (see
    /// [`StmConfig`]), the loop degrades gracefully: it waits for all
    /// other retry-loop transactions to drain and re-runs `f` in
    /// exclusive *serial mode*, which cannot lose another conflict race
    /// — a livelock-freedom guarantee under any contention-management
    /// policy. A configured [`StmConfig::tx_deadline`] triggers the
    /// same escalation once it passes (this entry point never returns
    /// an error, so the deadline bounds completion time instead).
    ///
    /// # Panics
    ///
    /// Panics if the heap fills up ([`TxError::HeapFull`] is not
    /// retryable), or if `f` returns [`TxError::DeadlineExceeded`]
    /// explicitly; use [`Stm::try_atomically`] to handle those cases.
    pub fn atomically<T>(&self, f: impl FnMut(&mut Transaction<'_>) -> TxResult<T>) -> T {
        let budget = RetryBudget {
            max_attempts: None,
            deadline: self.config.tx_deadline.map(|d| Instant::now() + d),
            fallible: false,
        };
        match self.run_loop(f, budget) {
            Ok(v) => v,
            Err(RetryExhausted::HeapFull) => {
                panic!("heap slot table exhausted inside atomically")
            }
            Err(RetryExhausted::DeadlineExceeded { .. }) => {
                panic!("transaction closure returned TxError::DeadlineExceeded inside atomically")
            }
            Err(RetryExhausted::Conflicts { .. }) => {
                unreachable!("infallible budget => conflicts never exhaust")
            }
        }
    }

    /// Like [`Stm::atomically`] but gives up after the configured retry
    /// budget (and the configured [`StmConfig::tx_deadline`], if any)
    /// instead of looping forever.
    ///
    /// # Errors
    ///
    /// [`RetryExhausted::Conflicts`] after `max_retries` failed
    /// attempts; [`RetryExhausted::DeadlineExceeded`] once the
    /// configured deadline passes; [`RetryExhausted::HeapFull`] on
    /// allocation failure.
    pub fn try_atomically<T>(
        &self,
        f: impl FnMut(&mut Transaction<'_>) -> TxResult<T>,
    ) -> Result<T, RetryExhausted> {
        let budget = RetryBudget {
            max_attempts: Some(self.config.max_retries),
            deadline: self.config.tx_deadline.map(|d| Instant::now() + d),
            fallible: true,
        };
        self.run_loop(f, budget)
    }

    /// Like [`Stm::try_atomically`] with an explicit per-call deadline,
    /// overriding [`StmConfig::tx_deadline`]. The retry budget
    /// (`max_retries`) still applies; whichever runs out first ends the
    /// loop. This is the entry point for request-scoped work (a service
    /// handler that must answer or shed within its latency budget).
    ///
    /// # Errors
    ///
    /// As [`Stm::try_atomically`];
    /// [`RetryExhausted::DeadlineExceeded`] once `deadline` (measured
    /// from now) passes — with `attempts: 0` if it already has.
    #[must_use = "the transaction may have been shed; inspect the result"]
    pub fn try_atomically_within<T>(
        &self,
        deadline: Duration,
        f: impl FnMut(&mut Transaction<'_>) -> TxResult<T>,
    ) -> Result<T, RetryExhausted> {
        let budget = RetryBudget {
            max_attempts: Some(self.config.max_retries),
            deadline: Some(Instant::now() + deadline),
            fallible: true,
        };
        self.run_loop(f, budget)
    }

    /// The retry loop shared by every entry path; `budget` is the one
    /// give-up decision (attempts *and* deadline — see [`RetryBudget`]).
    fn run_loop<T>(
        &self,
        mut f: impl FnMut(&mut Transaction<'_>) -> TxResult<T>,
        budget: RetryBudget,
    ) -> Result<T, RetryExhausted> {
        let mut seed = None;
        let mut failures = 0u32;
        // A deadline that has already passed sheds the call before any
        // attempt runs — the admission-control fast path.
        if budget.fallible && budget.past_deadline() {
            self.stats.add(|c| &c.deadlines_exceeded, 1);
            return Err(RetryExhausted::DeadlineExceeded { attempts: 0 });
        }
        loop {
            // Past-deadline infallible loops escalate to serial mode:
            // they cannot return an error, but exclusive execution
            // cannot lose another conflict race, so the block completes
            // in bounded further time instead of thrashing.
            let serial = self.config.serial_after_aborts.is_some_and(|n| failures >= n)
                || (!budget.fallible && failures > 0 && budget.past_deadline());
            let gate = self.enter_gate(serial);
            match self.attempt(&mut f, &mut seed) {
                Ok(v) => return Ok(v),
                Err(TxError::HeapFull) => return Err(RetryExhausted::HeapFull),
                Err(TxError::DeadlineExceeded) => {
                    // The closure bailed out on its own deadline check;
                    // give up without re-running it.
                    self.stats.add(|c| &c.deadlines_exceeded, 1);
                    return Err(RetryExhausted::DeadlineExceeded { attempts: failures + 1 });
                }
                Err(TxError::Conflict(kind)) => {
                    failures = failures.saturating_add(1);
                    if let Some(gave_up) = self.give_up(&budget, failures, kind) {
                        return Err(gave_up);
                    }
                    drop(gate);
                    self.backoff_within(failures, budget.deadline);
                }
            }
        }
    }

    /// The single give-up decision for fallible budgets: deadline
    /// first (it is the stronger promise), then the attempt count.
    /// Returns `None` while the loop should keep retrying.
    fn give_up(
        &self,
        budget: &RetryBudget,
        failures: u32,
        last: ConflictKind,
    ) -> Option<RetryExhausted> {
        if !budget.fallible {
            return None;
        }
        if budget.past_deadline() {
            self.stats.add(|c| &c.deadlines_exceeded, 1);
            return Some(RetryExhausted::DeadlineExceeded { attempts: failures });
        }
        if budget.max_attempts.is_some_and(|b| failures > b) {
            self.stats.add(|c| &c.retries_exhausted, 1);
            return Some(RetryExhausted::Conflicts { attempts: failures, last });
        }
        None
    }

    /// One attempt: begin (re-seeding priority/karma from prior
    /// attempts), run `f`, commit or roll back. On failure the seed is
    /// updated so the next attempt inherits this one's age and karma.
    ///
    /// A panic inside `f` is caught, the transaction is rolled back
    /// (undo replayed, ownership released, registry deregistered), and
    /// the unwind then resumes — so callers above the retry loop never
    /// observe a heap with the panicking transaction's effects or
    /// ownership in place, and the serial-mode gate hold (dropped by
    /// `run_loop` as the resumed unwind passes through it) is released
    /// only after cleanup finished.
    fn attempt<T>(
        &self,
        f: &mut impl FnMut(&mut Transaction<'_>) -> TxResult<T>,
        seed: &mut Option<AttemptSeed>,
    ) -> TxResult<T> {
        let mut tx = self.begin_with(seed.as_ref());
        let ctl = tx.ctl_arc();
        let body = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut tx)));
        let result = match body {
            Ok(Ok(v)) => tx.commit().map(|()| v),
            Ok(Err(e)) => {
                match e {
                    TxError::Conflict(kind) => tx.abort_with(kind),
                    TxError::HeapFull | TxError::DeadlineExceeded => {
                        tx.abort_with(ConflictKind::Explicit)
                    }
                }
                Err(e)
            }
            Err(payload) => {
                self.stats.add(|c| &c.panics_unwound, 1);
                tx.abort_with(ConflictKind::Explicit);
                std::panic::resume_unwind(payload);
            }
        };
        if result.is_err() {
            *seed = Some(AttemptSeed { priority: ctl.priority(), karma: ctl.karma() });
        }
        result
    }

    /// Takes the serial-mode gate: shared for a normal attempt,
    /// exclusive for an escalated one. Shared entrants yield while a
    /// writer is queued so escalation cannot starve.
    ///
    /// Both acquisitions go through [`block_until`], so a schedule
    /// explorer sees a waiting entrant as a *blocked* thread (runnable
    /// again only after some other thread progressed) instead of a
    /// native `RwLock` wait that would wedge the exploration baton.
    /// In production builds the non-blocking attempt runs once and
    /// falls back to the plain blocking acquisition.
    fn enter_gate(&self, exclusive: bool) -> GateGuard<'_> {
        yield_point(crate::schedpt::GATE_ENTER);
        if exclusive {
            self.gate_waiting.fetch_add(1, Ordering::AcqRel);
            let guard = block_until(
                crate::schedpt::GATE_ACQUIRE_EXCLUSIVE,
                || self.gate.try_write(),
                || self.gate.write(),
            );
            self.gate_waiting.fetch_sub(1, Ordering::AcqRel);
            self.stats.add(|c| &c.serial_entries, 1);
            GateGuard::Exclusive(guard)
        } else {
            let guard = block_until(
                crate::schedpt::GATE_ACQUIRE_SHARED,
                // Refuse even an available read slot while a writer is
                // queued: escalation must not starve behind a stream of
                // shared entrants.
                || {
                    if self.gate_waiting.load(Ordering::Acquire) > 0 {
                        None
                    } else {
                        self.gate.try_read()
                    }
                },
                || {
                    while self.gate_waiting.load(Ordering::Acquire) > 0 {
                        std::thread::yield_now();
                    }
                    self.gate.read()
                },
            );
            GateGuard::Shared(guard)
        }
    }

    /// Randomized exponential backoff between attempts: spin a random
    /// count in a window doubling per attempt (capped by
    /// `backoff_cap_log2`), yielding to the scheduler past
    /// `backoff_yield_after` attempts.
    pub(crate) fn backoff(&self, attempt: u32) {
        let cap = 1u32 << attempt.min(self.config.backoff_cap_log2);
        let spins = omt_util::rng::thread_rng().gen_range(0..=cap);
        for _ in 0..spins {
            std::hint::spin_loop();
        }
        if attempt > self.config.backoff_yield_after {
            std::thread::yield_now();
        }
    }

    /// Deadline-capped [`Stm::backoff`]: once the budget's deadline has
    /// passed there is no point burning it further on a wait, so the
    /// retry loop goes straight to its next (final or serial) attempt.
    fn backoff_within(&self, attempt: u32, deadline: Option<Instant>) {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return;
        }
        self.backoff(attempt);
    }

    /// Resets every live object's version to zero and advances the
    /// epoch — the heavy-weight fallback for version-number exhaustion.
    ///
    /// The cheap path (automatic wrap + epoch bump at release time)
    /// normally suffices; this exists to measure the full renumbering
    /// cost in experiment E9 and to restore small-version-width
    /// configurations to a clean state.
    ///
    /// # Panics
    ///
    /// Panics if any transaction is still active or any killed
    /// transaction is unrecovered (requires quiescence).
    pub fn renumber_versions(&self) {
        assert_eq!(
            self.registry.active_count(),
            0,
            "renumber_versions requires quiescence (no active transactions)"
        );
        assert_eq!(
            self.registry.orphan_count(),
            0,
            "renumber_versions requires quiescence (no unrecovered orphans)"
        );
        self.bump_epoch();
        self.heap.for_each_live(|r| {
            self.heap.header_atomic(r).store(0, Ordering::Release);
        });
    }

    /// Recovers the orphaned (killed) transaction holding `token`,
    /// replaying its undo log and releasing its ownership records with
    /// this STM's wrap/epoch semantics. Returns `false` if someone else
    /// got there first (or the token was never orphaned).
    pub(crate) fn recover_orphan(&self, token: TxToken) -> bool {
        let max_version = self.config.max_version();
        // Under snapshot reads, dirtied orphan entries burn a fresh
        // clock timestamp (never `original + 1`, which could exceed the
        // clock and strand extending readers); otherwise the legacy
        // per-entry increment applies.
        let mut fresh_burn = || {
            if self.config.snapshot_reads {
                let stamp = self.burn_stamp();
                // No transaction context to attribute the claim to, so
                // the contention counts land on the global stats
                // directly.
                self.stats.add(|c| &c.clock_cas_failures, stamp.cas_failures);
                self.stats.add(|c| &c.clock_bump_retries, stamp.bump_retries);
                Some(stamp.value)
            } else {
                None
            }
        };
        self.registry
            .recover(&self.heap, token, max_version, &mut fresh_burn, &mut || self.bump_epoch())
    }

    /// Reads the `commit-clock-only` unsoundness knob (see the field).
    #[cfg(test)]
    pub(crate) fn test_unsound_commit_clock_only(&self) -> bool {
        self.test_unsound_commit_clock_only.load(Ordering::Relaxed)
    }

    /// Arms/disarms validation's single-clock fast path (test only).
    #[cfg(test)]
    pub(crate) fn set_test_unsound_commit_clock_only(&self, on: bool) {
        self.test_unsound_commit_clock_only.store(on, Ordering::Relaxed);
    }

    /// Reads the `abort-restores-version` unsoundness knob (see the
    /// field).
    #[cfg(test)]
    pub(crate) fn test_unsound_abort_restores_version(&self) -> bool {
        self.test_unsound_abort_restores_version.load(Ordering::Relaxed)
    }

    /// Arms/disarms version-burning on abort (test only).
    #[cfg(test)]
    pub(crate) fn set_test_unsound_abort_restores_version(&self, on: bool) {
        self.test_unsound_abort_restores_version.store(on, Ordering::Relaxed);
    }

    /// Reads the `snapshot-skip-recheck` unsoundness knob (see the
    /// field).
    #[cfg(test)]
    pub(crate) fn test_unsound_snapshot_skip_recheck(&self) -> bool {
        self.test_unsound_snapshot_skip_recheck.load(Ordering::Relaxed)
    }

    /// Arms/disarms the snapshot read's header re-check (test only).
    #[cfg(test)]
    pub(crate) fn set_test_unsound_snapshot_skip_recheck(&self, on: bool) {
        self.test_unsound_snapshot_skip_recheck.store(on, Ordering::Relaxed);
    }

    /// Reads the `extension-skips-revalidate` unsoundness knob (see the
    /// field).
    #[cfg(test)]
    pub(crate) fn test_unsound_extension_skips_revalidate(&self) -> bool {
        self.test_unsound_extension_skips_revalidate.load(Ordering::Relaxed)
    }

    /// Arms/disarms timestamp extension's revalidation (test only).
    #[cfg(test)]
    pub(crate) fn set_test_unsound_extension_skips_revalidate(&self, on: bool) {
        self.test_unsound_extension_skips_revalidate.store(on, Ordering::Relaxed);
    }

    /// Rewinds the token counter so the next [`Stm::begin`] reissues a
    /// specific token (test only; exercises the collision guard).
    #[cfg(test)]
    pub(crate) fn set_next_token_for_test(&self, raw: u32) {
        self.next_token.store(raw, Ordering::Relaxed);
    }

    pub(crate) fn flush_outcome(&self, outcome: Outcome, counters: &TxCounters) {
        let s = &self.stats;
        match outcome {
            Outcome::Committed => s.add(|c| &c.commits, 1),
            Outcome::Aborted(ConflictKind::Busy) => s.add(|c| &c.aborts_busy, 1),
            Outcome::Aborted(ConflictKind::Invalid) => s.add(|c| &c.aborts_invalid, 1),
            Outcome::Aborted(ConflictKind::Epoch) => s.add(|c| &c.aborts_epoch, 1),
            Outcome::Aborted(ConflictKind::Explicit) => s.add(|c| &c.aborts_explicit, 1),
            Outcome::Aborted(ConflictKind::Doomed) => s.add(|c| &c.aborts_doomed, 1),
            Outcome::Killed => s.add(|c| &c.txs_killed, 1),
        }
        s.add(|c| &c.open_read_ops, counters.open_read_ops);
        s.add(|c| &c.open_update_ops, counters.open_update_ops);
        s.add(|c| &c.log_undo_ops, counters.log_undo_ops);
        s.add(|c| &c.read_entries, counters.read_entries);
        s.add(|c| &c.read_filtered, counters.read_filtered);
        s.add(|c| &c.undo_entries, counters.undo_entries);
        s.add(|c| &c.undo_filtered, counters.undo_filtered);
        s.add(|c| &c.acquires, counters.acquires);
        s.add(|c| &c.validations, counters.validations);
        s.add(|c| &c.mid_validations, counters.mid_validations);
        s.add(|c| &c.validation_fast_path, counters.validation_fast_path);
        s.add(|c| &c.validation_entries_scanned, counters.validation_entries_scanned);
        s.add(|c| &c.cm_spins, counters.cm_spins);
        s.add(|c| &c.dooms_issued, counters.dooms);
        s.add(|c| &c.snapshot_read_hits, counters.snapshot_read_hits);
        s.add(|c| &c.ts_extensions, counters.ts_extensions);
        s.add(|c| &c.extension_failures, counters.extension_failures);
        s.add(|c| &c.readonly_commits, counters.readonly_commits);
        s.add(|c| &c.readonly_aborts, counters.readonly_aborts);
        s.add(|c| &c.clock_cas_failures, counters.clock_cas_failures);
        s.add(|c| &c.clock_bump_retries, counters.clock_bump_retries);
        s.add(|c| &c.mv_read_hits, counters.mv_read_hits);
        s.add(|c| &c.mv_chain_misses, counters.mv_chain_misses);
        s.add(|c| &c.snapshot_decomposed_opens, counters.snapshot_decomposed_opens);
    }
}

impl GcParticipant for Stm {
    fn trace_roots(&self, mark: &mut dyn FnMut(omt_heap::ObjRef)) {
        self.registry.trace_roots(mark);
        self.mv.trace_roots(mark);
    }

    fn after_sweep(&self, is_live: &dyn Fn(omt_heap::ObjRef) -> bool) {
        self.registry.after_sweep(is_live);
        // Trim version chains at quiescence: every entry whose validity
        // interval ended at or before the oldest active snapshot can
        // never be served again. With no reader in flight the commit
        // clock itself is the floor — anything retired so far is
        // already unreachable by any *future* snapshot (which starts at
        // the clock or later and is served in place).
        let floor = self.registry.min_active_read_ver().unwrap_or_else(|| self.commit_clock());
        let trimmed = self.mv.trim(is_live, floor);
        self.stats.add(|c| &c.mv_trims, trimmed);
    }
}
