//! The STM runtime: transaction management and the retry loop.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use omt_heap::{GcParticipant, Heap};
use rand::Rng;

use crate::config::StmConfig;
use crate::error::{ConflictKind, RetryExhausted, TxError, TxResult};
use crate::registry::TxRegistry;
use crate::stats::{StmStats, StmStatsSnapshot};
use crate::tx::{Outcome, Transaction, TxCounters};
use crate::word::TxToken;

/// A direct-access software transactional memory over an
/// [`omt_heap::Heap`].
///
/// One `Stm` instance manages any number of concurrent transactions on
/// the heap it wraps. Share it across threads behind an [`Arc`] (or with
/// scoped threads).
///
/// # Examples
///
/// Transfer between two accounts with automatic retry:
///
/// ```
/// use std::sync::Arc;
/// use omt_heap::{Heap, ClassDesc, Word};
/// use omt_stm::Stm;
///
/// let heap = Arc::new(Heap::new());
/// let class = heap.define_class(ClassDesc::with_var_fields("Acct", &["bal"]));
/// let a = heap.alloc(class)?;
/// let b = heap.alloc(class)?;
/// let stm = Stm::new(heap.clone());
/// heap.store(a, 0, Word::from_scalar(100));
///
/// stm.atomically(|tx| {
///     let bal_a = tx.read(a, 0)?.as_scalar().unwrap();
///     let bal_b = tx.read(b, 0)?.as_scalar().unwrap();
///     tx.write(a, 0, Word::from_scalar(bal_a - 30))?;
///     tx.write(b, 0, Word::from_scalar(bal_b + 30))?;
///     Ok(())
/// });
/// assert_eq!(heap.load(b, 0).as_scalar(), Some(30));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Stm {
    heap: Arc<Heap>,
    config: StmConfig,
    /// Global renumbering epoch; bumped when a version number wraps.
    epoch: AtomicU64,
    next_token: AtomicU32,
    next_serial: AtomicU64,
    registry: TxRegistry,
    stats: Arc<StmStats>,
}

impl Stm {
    /// Creates an STM over `heap` with the default configuration.
    pub fn new(heap: Arc<Heap>) -> Stm {
        Stm::with_config(heap, StmConfig::default())
    }

    /// Creates an STM with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`StmConfig::validate`]).
    pub fn with_config(heap: Arc<Heap>, config: StmConfig) -> Stm {
        config.validate();
        let stats: Arc<StmStats> = Arc::new(StmStats::default());
        Stm {
            heap,
            config,
            epoch: AtomicU64::new(0),
            next_token: AtomicU32::new(1),
            next_serial: AtomicU64::new(1),
            registry: TxRegistry::new(stats.clone()),
            stats,
        }
    }

    /// The underlying heap.
    pub fn heap(&self) -> &Arc<Heap> {
        &self.heap
    }

    /// The active configuration.
    pub fn config(&self) -> &StmConfig {
        &self.config
    }

    /// Snapshot of the global statistics.
    pub fn stats(&self) -> StmStatsSnapshot {
        self.stats.snapshot()
    }

    /// The registry of in-flight transactions (also the STM's
    /// [`GcParticipant`]).
    pub fn registry(&self) -> &TxRegistry {
        &self.registry
    }

    /// This STM as a GC participant, to pass to
    /// [`omt_heap::Heap::collect`].
    pub fn gc_participant(&self) -> &dyn GcParticipant {
        &self.registry
    }

    /// Current renumbering epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    pub(crate) fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Begins a transaction.
    pub fn begin(&self) -> Transaction<'_> {
        self.stats.add(&self.stats.begins, 1);
        let serial = self.next_serial.fetch_add(1, Ordering::Relaxed);
        let token = TxToken(self.next_token.fetch_add(1, Ordering::Relaxed));
        Transaction::new(self, serial, token, self.epoch())
    }

    /// Runs `f` transactionally, retrying on conflicts with randomized
    /// exponential backoff, until it commits.
    ///
    /// # Panics
    ///
    /// Panics if the heap fills up ([`TxError::HeapFull`] is not
    /// retryable); use [`Stm::try_atomically`] to handle that case.
    pub fn atomically<T>(&self, mut f: impl FnMut(&mut Transaction<'_>) -> TxResult<T>) -> T {
        let mut attempt = 0u32;
        loop {
            match self.attempt(&mut f) {
                Ok(v) => return v,
                Err(TxError::HeapFull) => panic!("heap slot table exhausted inside atomically"),
                Err(TxError::Conflict(_)) => {
                    attempt = attempt.saturating_add(1);
                    backoff(attempt);
                }
            }
        }
    }

    /// Like [`Stm::atomically`] but gives up after the configured retry
    /// budget instead of looping forever.
    ///
    /// # Errors
    ///
    /// [`RetryExhausted::Conflicts`] after `max_retries` failed
    /// attempts; [`RetryExhausted::HeapFull`] on allocation failure.
    pub fn try_atomically<T>(
        &self,
        mut f: impl FnMut(&mut Transaction<'_>) -> TxResult<T>,
    ) -> Result<T, RetryExhausted> {
        let budget = self.config.max_retries;
        let mut last = ConflictKind::Busy;
        for attempt in 0..=budget {
            match self.attempt(&mut f) {
                Ok(v) => return Ok(v),
                Err(TxError::HeapFull) => return Err(RetryExhausted::HeapFull),
                Err(TxError::Conflict(kind)) => {
                    last = kind;
                    backoff(attempt + 1);
                }
            }
        }
        Err(RetryExhausted::Conflicts { attempts: budget + 1, last })
    }

    fn attempt<T>(&self, f: &mut impl FnMut(&mut Transaction<'_>) -> TxResult<T>) -> TxResult<T> {
        let mut tx = self.begin();
        match f(&mut tx) {
            Ok(v) => {
                tx.commit()?;
                Ok(v)
            }
            Err(e) => {
                match e {
                    TxError::Conflict(kind) => tx.abort_with(kind),
                    TxError::HeapFull => tx.abort_with(ConflictKind::Explicit),
                }
                Err(e)
            }
        }
    }

    /// Resets every live object's version to zero and advances the
    /// epoch — the heavy-weight fallback for version-number exhaustion.
    ///
    /// The cheap path (automatic wrap + epoch bump at release time)
    /// normally suffices; this exists to measure the full renumbering
    /// cost in experiment E9 and to restore small-version-width
    /// configurations to a clean state.
    ///
    /// # Panics
    ///
    /// Panics if any transaction is still active (requires quiescence).
    pub fn renumber_versions(&self) {
        assert_eq!(
            self.registry.active_count(),
            0,
            "renumber_versions requires quiescence (no active transactions)"
        );
        self.bump_epoch();
        self.heap.for_each_live(|r| {
            self.heap.header_atomic(r).store(0, Ordering::Release);
        });
    }

    pub(crate) fn flush_outcome(&self, outcome: Outcome, counters: &TxCounters) {
        let s = &self.stats;
        match outcome {
            Outcome::Committed => s.add(&s.commits, 1),
            Outcome::Aborted(ConflictKind::Busy) => s.add(&s.aborts_busy, 1),
            Outcome::Aborted(ConflictKind::Invalid) => s.add(&s.aborts_invalid, 1),
            Outcome::Aborted(ConflictKind::Epoch) => s.add(&s.aborts_epoch, 1),
            Outcome::Aborted(ConflictKind::Explicit) => s.add(&s.aborts_explicit, 1),
        }
        s.add(&s.open_read_ops, counters.open_read_ops);
        s.add(&s.open_update_ops, counters.open_update_ops);
        s.add(&s.log_undo_ops, counters.log_undo_ops);
        s.add(&s.read_entries, counters.read_entries);
        s.add(&s.read_filtered, counters.read_filtered);
        s.add(&s.undo_entries, counters.undo_entries);
        s.add(&s.undo_filtered, counters.undo_filtered);
        s.add(&s.acquires, counters.acquires);
        s.add(&s.validations, counters.validations);
        s.add(&s.mid_validations, counters.mid_validations);
        s.add(&s.cm_spins, counters.cm_spins);
    }
}

/// Randomized exponential backoff between transaction attempts.
fn backoff(attempt: u32) {
    let cap = 1u32 << attempt.min(12);
    let spins = rand::thread_rng().gen_range(0..=cap);
    for _ in 0..spins {
        std::hint::spin_loop();
    }
    if attempt > 8 {
        std::thread::yield_now();
    }
}
