//! Bounded per-word version chains (multi-version objects, DESIGN.md
//! §4.13).
//!
//! With [`StmConfig::mv_depth`](crate::StmConfig) `> 0`, every
//! publishing commit *retires* the value it overwrites into a bounded
//! ring keyed by `(object, field)`, tagged with the half-open
//! commit-clock interval `[from, until)` over which that value was the
//! committed state. A snapshot reader whose `read_ver` falls inside the
//! interval can then be served the retired value instead of attempting
//! a timestamp extension — the extension either succeeds (losing the
//! abort-free guarantee the moment a conflicting entry exists) or
//! aborts the reader. Chains close the largest remaining source of
//! reader aborts under read-write mixes.
//!
//! # Why no seqlock sandwich on chain hits
//!
//! A chain entry is immutable once pushed: `retire` appends a complete
//! `(from, until, bits)` triple under the shard lock and never mutates
//! it afterwards. A lookup that finds an entry covering `read_ver`
//! therefore returns a value that *was* the committed state of the
//! field throughout `[from, until)` — there is no window in which a
//! concurrent writer can tear it, so the composed read's header
//! re-check is unnecessary on this path. The only concurrent mutation
//! is trimming, which removes whole entries under the same shard lock;
//! a lookup racing a trim either finds the entry (still valid — trim
//! only removes entries no active or future `read_ver` can need) or
//! misses and falls back to the extension path.
//!
//! # Reclamation
//!
//! Chains ride the heap's stop-the-world collections ([`Stm`]'s
//! [`omt_heap::GcParticipant`] impl, which delegates here): retired
//! values that are references are traced as roots (a chain hit may
//! resurrect them into a reader's computation), rings of dead objects
//! are dropped, and entries whose `until` is at or below the minimum
//! active `read_ver` are trimmed — no active transaction can be served
//! by them, and every future transaction begins at or past the current
//! clock. The ring bound (`mv_depth`) caps memory between collections.
//!
//! [`Stm`]: crate::Stm

use std::collections::HashMap;

use omt_util::sync::Mutex;

use omt_heap::{ObjRef, Word};

use crate::schedpt;

/// Number of lock shards. A power of two; keys mix the object and
/// field so hot neighbouring fields spread out.
const MV_SHARDS: usize = 16;

/// One retired version: `bits` was the committed value of the field for
/// every commit-clock timestamp in `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MvEntry {
    /// First timestamp the value was current at (the install stamp of
    /// the retired value — the update entry's `original_version`).
    pub from: u64,
    /// The retiring commit's stamp (exclusive): the first timestamp at
    /// which the *successor* value is current.
    pub until: u64,
    /// Raw field bits of the retired value.
    pub bits: u64,
}

/// One shard: rings keyed by `(object raw bits, field)`. Rings are
/// append-ordered, so `until` values increase towards the back.
type MvShard = HashMap<(u32, u32), Vec<MvEntry>>;

/// The store of all version chains of one [`crate::Stm`].
pub(crate) struct MvStore {
    /// Ring bound per `(object, field)`; 0 disables the store entirely
    /// (no retires, no lookups, no yields — byte-identical behaviour to
    /// a build without chains).
    depth: usize,
    shards: Box<[Mutex<MvShard>]>,
}

impl MvStore {
    pub(crate) fn new(depth: usize) -> MvStore {
        MvStore { depth, shards: (0..MV_SHARDS).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    /// True when chains are in use (`mv_depth > 0`).
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.depth > 0
    }

    #[inline]
    fn shard(&self, obj_raw: u32, field: u32) -> &Mutex<MvShard> {
        // Golden-ratio mix so consecutive objects and fields spread.
        let h = (obj_raw ^ field.wrapping_mul(0x9E37_79B9)) as usize;
        &self.shards[h & (MV_SHARDS - 1)]
    }

    /// Retires one `(value, interval)` pair for `(obj, field)`. Called
    /// by a publishing commit *before* the header release-store that
    /// installs the successor, so a reader that meets the new version
    /// finds the chain entry already in place (the abort-free
    /// guarantee; a retire-after-release window would let the reader
    /// miss and abort). Keys carry the object's full raw bits, so a
    /// recycled slot (new generation) never aliases a dead ring.
    pub(crate) fn retire(&self, obj: ObjRef, field: u32, entry: MvEntry) {
        debug_assert!(self.enabled());
        debug_assert!(entry.from < entry.until, "empty validity interval");
        omt_util::sched::yield_point_keyed(schedpt::MV_PRE_RETIRE, obj.to_raw() as usize);
        let mut shard = self.shard(obj.to_raw(), field).lock();
        let ring = shard.entry((obj.to_raw(), field)).or_default();
        ring.push(entry);
        if ring.len() > self.depth {
            let excess = ring.len() - self.depth;
            ring.drain(..excess);
        }
    }

    /// Finds the retired value of `(obj, field)` current at `read_ver`,
    /// if the chain still holds it: the (unique) entry with
    /// `from <= read_ver < until`. Returns the value and the entry's
    /// `until`, which the caller must fold into its extension ceiling —
    /// a transaction that computed with this value must never advance
    /// its `read_ver` to `until` or past it.
    pub(crate) fn lookup(&self, obj: ObjRef, field: u32, read_ver: u64) -> Option<(Word, u64)> {
        if !self.enabled() {
            return None;
        }
        omt_util::sched::yield_point_keyed(schedpt::MV_PRE_WALK, obj.to_raw() as usize);
        let shard = self.shard(obj.to_raw(), field).lock();
        let ring = shard.get(&(obj.to_raw(), field))?;
        // Newest-first: intervals are disjoint, so the first cover wins.
        ring.iter()
            .rev()
            .find(|e| e.from <= read_ver && read_ver < e.until)
            .map(|e| (Word::from_bits(e.bits), e.until))
    }

    /// GC: retired values that are references must stay live — a chain
    /// hit hands them to a reader.
    pub(crate) fn trace_roots(&self, mark: &mut dyn FnMut(ObjRef)) {
        if !self.enabled() {
            return;
        }
        for shard in self.shards.iter() {
            for ring in shard.lock().values() {
                for entry in ring {
                    if let Some(r) = Word::from_bits(entry.bits).as_ref() {
                        mark(r);
                    }
                }
            }
        }
    }

    /// GC trimming (stop-the-world, after the mark): drops rings of
    /// dead objects wholesale and, within live rings, entries whose
    /// `until <= min_read_ver` — no transaction with
    /// `read_ver >= min_read_ver` can be served by them, active
    /// transactions all sit at or above the floor, and future
    /// transactions begin at or past the current clock (which the
    /// caller uses as the floor when no transaction is active).
    /// Returns the number of entries removed. Yields at each shard
    /// boundary (never under a shard lock) so the explorer can
    /// interleave chain walks with the trim; with `mv_depth = 0` the
    /// store is empty and no yield fires.
    pub(crate) fn trim(&self, is_live: &dyn Fn(ObjRef) -> bool, min_read_ver: u64) -> u64 {
        if !self.enabled() {
            return 0;
        }
        let mut trimmed = 0u64;
        for shard in self.shards.iter() {
            omt_util::sched::yield_point(schedpt::MV_PRE_TRIM);
            let mut shard = shard.lock();
            shard.retain(|&(obj_raw, _), ring| {
                let live = ObjRef::from_raw(obj_raw).is_some_and(&is_live);
                if !live {
                    trimmed += ring.len() as u64;
                    return false;
                }
                let before = ring.len();
                ring.retain(|e| e.until > min_read_ver);
                trimmed += (before - ring.len()) as u64;
                !ring.is_empty()
            });
        }
        trimmed
    }

    /// Total retained entries (tests and debugging; takes every shard
    /// lock).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().values().map(Vec::len).sum::<usize>()).sum()
    }
}

impl std::fmt::Debug for MvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MvStore").field("depth", &self.depth).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_heap::{ClassDesc, Heap};

    fn objs(n: usize) -> (Heap, Vec<ObjRef>) {
        let heap = Heap::new();
        let class = heap.define_class(ClassDesc::with_var_fields("C", &["v"]));
        let refs = (0..n).map(|_| heap.alloc(class).unwrap()).collect();
        (heap, refs)
    }

    #[test]
    fn depth_zero_stores_and_serves_nothing() {
        let (_heap, refs) = objs(1);
        let mv = MvStore::new(0);
        assert!(!mv.enabled());
        assert_eq!(mv.lookup(refs[0], 0, 5), None);
        assert_eq!(mv.trim(&|_| true, u64::MAX), 0);
    }

    #[test]
    fn lookup_serves_the_interval_covering_read_ver() {
        let (_heap, refs) = objs(1);
        let mv = MvStore::new(4);
        // Value 10 current over [3, 7), then 20 over [7, 12).
        mv.retire(refs[0], 0, MvEntry { from: 3, until: 7, bits: 10 });
        mv.retire(refs[0], 0, MvEntry { from: 7, until: 12, bits: 20 });
        assert_eq!(mv.lookup(refs[0], 0, 2), None, "before the oldest interval");
        assert_eq!(mv.lookup(refs[0], 0, 3), Some((Word::from_bits(10), 7)));
        assert_eq!(mv.lookup(refs[0], 0, 6), Some((Word::from_bits(10), 7)));
        assert_eq!(mv.lookup(refs[0], 0, 7), Some((Word::from_bits(20), 12)));
        assert_eq!(mv.lookup(refs[0], 0, 11), Some((Word::from_bits(20), 12)));
        assert_eq!(mv.lookup(refs[0], 0, 12), None, "until is exclusive");
    }

    #[test]
    fn ring_is_bounded_by_depth_dropping_oldest() {
        let (_heap, refs) = objs(1);
        let mv = MvStore::new(2);
        for i in 0..5u64 {
            mv.retire(refs[0], 0, MvEntry { from: i, until: i + 1, bits: 100 + i });
        }
        assert_eq!(mv.len(), 2);
        assert_eq!(mv.lookup(refs[0], 0, 0), None, "oldest entries evicted");
        assert_eq!(mv.lookup(refs[0], 0, 3), Some((Word::from_bits(103), 4)));
        assert_eq!(mv.lookup(refs[0], 0, 4), Some((Word::from_bits(104), 5)));
    }

    #[test]
    fn fields_keep_independent_chains() {
        let (_heap, refs) = objs(1);
        let mv = MvStore::new(2);
        mv.retire(refs[0], 0, MvEntry { from: 1, until: 5, bits: 10 });
        mv.retire(refs[0], 1, MvEntry { from: 2, until: 6, bits: 20 });
        assert_eq!(mv.lookup(refs[0], 0, 4), Some((Word::from_bits(10), 5)));
        assert_eq!(mv.lookup(refs[0], 1, 4), Some((Word::from_bits(20), 6)));
        assert_eq!(mv.lookup(refs[0], 1, 1), None);
    }

    #[test]
    fn trim_drops_quiesced_entries_and_dead_rings() {
        let (_heap, refs) = objs(2);
        let mv = MvStore::new(4);
        mv.retire(refs[0], 0, MvEntry { from: 1, until: 4, bits: 10 });
        mv.retire(refs[0], 0, MvEntry { from: 4, until: 9, bits: 20 });
        mv.retire(refs[1], 0, MvEntry { from: 1, until: 100, bits: 30 });
        // Floor 4: the [1,4) entry can serve no read_ver >= 4; the
        // [4,9) entry still can (read_ver 4..=8). refs[1] died.
        let trimmed = mv.trim(&|r| r == refs[0], 4);
        assert_eq!(trimmed, 2, "one quiesced entry + one dead ring of one entry");
        assert_eq!(mv.lookup(refs[0], 0, 2), None);
        assert_eq!(mv.lookup(refs[0], 0, 5), Some((Word::from_bits(20), 9)));
        assert_eq!(mv.lookup(refs[1], 0, 50), None);
    }

    #[test]
    fn trace_roots_marks_only_reference_values() {
        let (_heap, refs) = objs(3);
        let mv = MvStore::new(4);
        mv.retire(
            refs[0],
            0,
            MvEntry { from: 1, until: 2, bits: Word::from_ref(refs[1]).to_bits() },
        );
        mv.retire(refs[0], 1, MvEntry { from: 1, until: 2, bits: Word::from_scalar(7).to_bits() });
        let mut roots = Vec::new();
        mv.trace_roots(&mut |r| roots.push(r));
        assert_eq!(roots, vec![refs[1]]);
    }
}
