//! Core STM behaviour tests: isolation, rollback, validation, nesting,
//! version overflow, GC integration.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use omt_heap::{ClassDesc, ClassId, Heap, RootSet, Word};

use crate::{CmPolicy, ConflictKind, Stm, StmConfig, StmWord, TxError};

fn setup() -> (Arc<Heap>, ClassId, Stm) {
    setup_with(StmConfig::default())
}

fn setup_with(config: StmConfig) -> (Arc<Heap>, ClassId, Stm) {
    let heap = Arc::new(Heap::new());
    let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["a", "b"]));
    let stm = Stm::with_config(heap.clone(), config);
    (heap, class, stm)
}

#[test]
fn read_your_own_write() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    let mut tx = stm.begin();
    tx.write(obj, 0, Word::from_scalar(5)).unwrap();
    assert_eq!(tx.read(obj, 0).unwrap().as_scalar(), Some(5));
    tx.commit().unwrap();
    assert_eq!(heap.load(obj, 0).as_scalar(), Some(5));
}

#[test]
fn commit_increments_version() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    assert_eq!(
        StmWord::decode(heap.header_atomic(obj).load(Ordering::Relaxed)),
        StmWord::Version(0)
    );
    for expected in 1..=3u64 {
        let mut tx = stm.begin();
        tx.write(obj, 0, Word::from_scalar(expected as i64)).unwrap();
        tx.commit().unwrap();
        assert_eq!(
            StmWord::decode(heap.header_atomic(obj).load(Ordering::Relaxed)),
            StmWord::Version(expected)
        );
    }
}

#[test]
fn abort_restores_values_and_version() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    heap.store(obj, 0, Word::from_scalar(10));
    heap.store(obj, 1, Word::from_scalar(20));

    let mut tx = stm.begin();
    tx.write(obj, 0, Word::from_scalar(99)).unwrap();
    tx.write(obj, 1, Word::from_scalar(98)).unwrap();
    // In-place updates are visible in the raw heap while owned...
    assert_eq!(heap.load(obj, 0).as_scalar(), Some(99));
    tx.abort();
    // ...and rolled back on abort. The version is *burned*, not
    // restored: a concurrent optimistic reader may have loaded the 99
    // while it was in place, and releasing back at version 0 would let
    // that reader validate against data that no longer exists (see
    // `UpdateEntry::original_version`).
    assert_eq!(heap.load(obj, 0).as_scalar(), Some(10));
    assert_eq!(heap.load(obj, 1).as_scalar(), Some(20));
    assert_eq!(
        StmWord::decode(heap.header_atomic(obj).load(Ordering::Relaxed)),
        StmWord::Version(1)
    );
}

#[test]
fn abort_without_stores_keeps_the_version() {
    // Acquisition alone (no `log_for_undo`, no in-place store) cannot
    // have exposed uncommitted data, so abort releases at the original
    // version and concurrent readers stay valid.
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    let mut reader = stm.begin();
    assert_eq!(reader.read(obj, 0).unwrap().as_scalar(), Some(0));
    let mut tx = stm.begin();
    tx.open_for_update(obj).unwrap();
    tx.abort();
    assert_eq!(
        StmWord::decode(heap.header_atomic(obj).load(Ordering::Relaxed)),
        StmWord::Version(0)
    );
    reader.commit().unwrap();
}

#[test]
fn drop_aborts_unfinished_transaction() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    {
        let mut tx = stm.begin();
        tx.write(obj, 0, Word::from_scalar(7)).unwrap();
        // tx dropped here without commit.
    }
    assert_eq!(heap.load(obj, 0).as_scalar(), Some(0));
    assert_eq!(stm.stats().aborts_explicit, 1);
    assert_eq!(stm.registry().active_count(), 0);
}

#[test]
fn writer_invalidates_concurrent_reader() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();

    let mut reader = stm.begin();
    assert_eq!(reader.read(obj, 0).unwrap().as_scalar(), Some(0));

    let mut writer = stm.begin();
    writer.write(obj, 0, Word::from_scalar(1)).unwrap();
    writer.commit().unwrap();

    assert_eq!(reader.commit(), Err(TxError::INVALID));
    assert_eq!(stm.stats().aborts_invalid, 1);
}

#[test]
fn reader_unaffected_by_disjoint_writer() {
    let (heap, class, stm) = setup();
    let a = heap.alloc(class).unwrap();
    let b = heap.alloc(class).unwrap();

    let mut reader = stm.begin();
    reader.read(a, 0).unwrap();

    let mut writer = stm.begin();
    writer.write(b, 0, Word::from_scalar(1)).unwrap();
    writer.commit().unwrap();

    reader.commit().unwrap();
}

#[test]
fn open_for_update_conflicts_when_owned() {
    let (heap, class, stm) =
        setup_with(StmConfig { cm: CmPolicy::AbortSelf, ..StmConfig::default() });
    let obj = heap.alloc(class).unwrap();

    let mut first = stm.begin();
    first.open_for_update(obj).unwrap();

    let mut second = stm.begin();
    assert_eq!(second.open_for_update(obj), Err(TxError::BUSY));
    second.abort();
    first.commit().unwrap();
}

#[test]
fn spin_policy_waits_out_short_owners() {
    let (heap, class, stm) =
        setup_with(StmConfig { cm: CmPolicy::Spin { max_spins: 4 }, ..StmConfig::default() });
    let obj = heap.alloc(class).unwrap();

    let mut first = stm.begin();
    first.open_for_update(obj).unwrap();
    let mut second = stm.begin();
    assert_eq!(second.open_for_update(obj), Err(TxError::BUSY));
    assert!(second.counters().cm_spins >= 4);
    second.abort();
    first.abort();
}

#[test]
fn open_for_update_is_idempotent() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    let mut tx = stm.begin();
    tx.open_for_update(obj).unwrap();
    tx.open_for_update(obj).unwrap();
    assert_eq!(tx.update_set_size(), 1);
    assert_eq!(tx.counters().acquires, 1);
    tx.commit().unwrap();
}

#[test]
fn read_after_own_update_logs_nothing() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    let mut tx = stm.begin();
    tx.open_for_update(obj).unwrap();
    tx.open_for_read(obj).unwrap();
    assert_eq!(tx.read_set_size(), 0, "read subsumed by prior update open");
    tx.commit().unwrap();
}

#[test]
fn filter_suppresses_duplicate_log_entries() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    let mut tx = stm.begin();
    for _ in 0..10 {
        tx.read(obj, 0).unwrap();
        tx.write(obj, 1, Word::from_scalar(1)).unwrap();
    }
    let c = tx.counters();
    // First read appended; the write made later reads subsumed anyway.
    assert_eq!(c.read_entries, 1);
    assert_eq!(c.undo_entries, 1);
    assert_eq!(c.undo_filtered, 9);
    tx.commit().unwrap();
}

#[test]
fn without_filter_duplicates_accumulate() {
    let (heap, class, stm) =
        setup_with(StmConfig { runtime_filter: false, ..StmConfig::default() });
    let obj = heap.alloc(class).unwrap();
    let mut tx = stm.begin();
    for _ in 0..10 {
        tx.read(obj, 0).unwrap();
    }
    assert_eq!(tx.read_set_size(), 10);
    // Commit the reader before the undo-logging writer aborts: its
    // abort burns a version (the reader could have seen dirty data),
    // which would — correctly — invalidate a still-open reader.
    tx.commit().unwrap();
    let mut tx2 = stm.begin();
    tx2.open_for_update(obj).unwrap();
    for _ in 0..10 {
        tx2.log_for_undo(obj, 0);
    }
    assert_eq!(tx2.undo_log_size(), 10);
    tx2.abort();
}

#[test]
fn undo_replay_in_reverse_restores_oldest_value() {
    // Without the filter, multiple undo entries exist for one field;
    // reverse replay must land on the oldest value.
    let (heap, class, stm) =
        setup_with(StmConfig { runtime_filter: false, ..StmConfig::default() });
    let obj = heap.alloc(class).unwrap();
    heap.store(obj, 0, Word::from_scalar(1));
    let mut tx = stm.begin();
    tx.write(obj, 0, Word::from_scalar(2)).unwrap();
    tx.write(obj, 0, Word::from_scalar(3)).unwrap();
    tx.abort();
    assert_eq!(heap.load(obj, 0).as_scalar(), Some(1));
}

#[test]
fn nested_rollback_keeps_outer_effects() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    let mut tx = stm.begin();
    tx.write(obj, 0, Word::from_scalar(1)).unwrap();
    let result: Result<(), TxError> = tx.nested(|tx| {
        tx.write(obj, 0, Word::from_scalar(2))?;
        tx.write(obj, 1, Word::from_scalar(3))?;
        Err(TxError::EXPLICIT)
    });
    assert_eq!(result, Err(TxError::EXPLICIT));
    // Inner effects rolled back; outer write survives.
    assert_eq!(tx.read(obj, 0).unwrap().as_scalar(), Some(1));
    assert_eq!(tx.read(obj, 1).unwrap().as_scalar(), Some(0));
    tx.commit().unwrap();
    assert_eq!(heap.load(obj, 0).as_scalar(), Some(1));
}

#[test]
fn nested_rollback_restores_value_filtered_by_outer_undo_entry() {
    // Regression guard for the filter/savepoint interaction: the outer
    // transaction's undo entry must not suppress the inner re-logging,
    // or partial rollback would miss the outer's intermediate value.
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    heap.store(obj, 0, Word::from_scalar(5));

    let mut tx = stm.begin();
    tx.write(obj, 0, Word::from_scalar(7)).unwrap(); // undo logs 5
    let sp = tx.savepoint();
    tx.write(obj, 0, Word::from_scalar(9)).unwrap(); // must re-log 7
    tx.rollback_to(sp);
    assert_eq!(tx.read(obj, 0).unwrap().as_scalar(), Some(7));
    tx.commit().unwrap();
    assert_eq!(heap.load(obj, 0).as_scalar(), Some(7));
}

#[test]
fn nested_rollback_releases_inner_acquisitions() {
    let (heap, class, stm) =
        setup_with(StmConfig { cm: CmPolicy::AbortSelf, ..StmConfig::default() });
    let a = heap.alloc(class).unwrap();
    let b = heap.alloc(class).unwrap();

    let mut tx = stm.begin();
    tx.open_for_update(a).unwrap();
    let sp = tx.savepoint();
    tx.open_for_update(b).unwrap();
    tx.rollback_to(sp);

    // b is free again for another transaction; a is still held.
    let mut other = stm.begin();
    other.open_for_update(b).unwrap();
    assert_eq!(other.open_for_update(a), Err(TxError::BUSY));
    other.abort();
    tx.commit().unwrap();
}

#[test]
fn successful_nested_effects_commit_with_outer() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    let mut tx = stm.begin();
    tx.nested(|tx| tx.write(obj, 0, Word::from_scalar(11))).unwrap();
    tx.commit().unwrap();
    assert_eq!(heap.load(obj, 0).as_scalar(), Some(11));
}

#[test]
#[should_panic(expected = "savepoint does not match")]
fn foreign_savepoint_is_rejected() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    let mut tx1 = stm.begin();
    tx1.write(obj, 0, Word::from_scalar(1)).unwrap();
    let sp = tx1.savepoint();
    tx1.abort();
    let mut tx2 = stm.begin();
    tx2.rollback_to(sp);
}

#[test]
fn version_overflow_wraps_and_bumps_epoch() {
    let (heap, class, stm) = setup_with(StmConfig { version_bits: 2, ..StmConfig::default() }); // max version 3
    let obj = heap.alloc(class).unwrap();
    let epoch_before = stm.epoch();
    for i in 0..4 {
        let mut tx = stm.begin();
        tx.write(obj, 0, Word::from_scalar(i)).unwrap();
        tx.commit().unwrap();
    }
    // Versions went 0→1→2→3→wrap to 0; epoch advanced once.
    assert_eq!(
        StmWord::decode(heap.header_atomic(obj).load(Ordering::Relaxed)),
        StmWord::Version(0)
    );
    assert_eq!(stm.epoch(), epoch_before + 1);
}

#[test]
fn epoch_bump_aborts_transactions_spanning_the_wrap() {
    let (heap, class, stm) = setup_with(StmConfig { version_bits: 2, ..StmConfig::default() });
    let obj = heap.alloc(class).unwrap();
    let other = heap.alloc(class).unwrap();

    let mut spanning = stm.begin();
    spanning.read(other, 0).unwrap();

    for i in 0..4 {
        let mut tx = stm.begin();
        tx.write(obj, 0, Word::from_scalar(i)).unwrap();
        tx.commit().unwrap();
    }
    // The spanning transaction read an unrelated object, but the epoch
    // advanced, so it must restart (ABA prevention).
    assert_eq!(spanning.commit(), Err(TxError::EPOCH));
}

#[test]
fn renumber_versions_resets_headers() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    for i in 0..5 {
        let mut tx = stm.begin();
        tx.write(obj, 0, Word::from_scalar(i)).unwrap();
        tx.commit().unwrap();
    }
    let epoch = stm.epoch();
    stm.renumber_versions();
    assert_eq!(stm.epoch(), epoch + 1);
    assert_eq!(
        StmWord::decode(heap.header_atomic(obj).load(Ordering::Relaxed)),
        StmWord::Version(0)
    );
}

#[test]
#[should_panic(expected = "quiescence")]
fn renumber_requires_quiescence() {
    let (_heap, _class, stm) = setup();
    let _tx = stm.begin();
    stm.renumber_versions();
}

#[test]
fn incremental_validation_catches_zombies() {
    let (heap, class, stm) =
        setup_with(StmConfig { validate_every: Some(1), ..StmConfig::default() });
    let a = heap.alloc(class).unwrap();
    let b = heap.alloc(class).unwrap();

    let mut zombie = stm.begin();
    zombie.read(a, 0).unwrap();

    let mut writer = stm.begin();
    writer.write(a, 0, Word::from_scalar(1)).unwrap();
    writer.commit().unwrap();

    // The doomed transaction is caught at its very next read, not at
    // commit.
    assert_eq!(zombie.read(b, 0), Err(TxError::INVALID));
    zombie.abort_internal_for_test();
}

#[test]
fn atomically_retries_until_success() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    let mut failures = 3;
    stm.atomically(|tx| {
        if failures > 0 {
            failures -= 1;
            return Err(TxError::EXPLICIT);
        }
        tx.write(obj, 0, Word::from_scalar(42))
    });
    assert_eq!(heap.load(obj, 0).as_scalar(), Some(42));
    assert_eq!(stm.stats().aborts_explicit, 3);
    assert_eq!(stm.stats().commits, 1);
}

#[test]
fn try_atomically_exhausts_budget() {
    let (_heap, _class, stm) = setup_with(StmConfig { max_retries: 3, ..StmConfig::default() });
    let result: Result<(), _> = stm.try_atomically(|_tx| Err(TxError::EXPLICIT));
    match result {
        Err(crate::RetryExhausted::Conflicts { attempts, last }) => {
            assert_eq!(attempts, 4);
            assert_eq!(last, ConflictKind::Explicit);
        }
        other => panic!("expected exhaustion, got {other:?}"),
    }
}

#[test]
fn alloc_in_aborted_tx_becomes_garbage() {
    let (heap, class, stm) = setup();
    let keeper = heap.alloc(class).unwrap();
    let mut tx = stm.begin();
    let fresh = tx.alloc(class).unwrap();
    assert!(heap.is_valid(fresh));
    tx.abort();
    let outcome = heap.collect(&RootSet::from(vec![keeper]), &[stm.gc_participant()]);
    assert_eq!(outcome.swept, 1);
    assert!(!heap.is_valid(fresh));
}

#[test]
fn gc_keeps_undo_old_values_alive() {
    let (heap, class, stm) = setup();
    let holder = heap.alloc(class).unwrap();
    let old_target = heap.alloc(class).unwrap();
    heap.store(holder, 1, Word::from_ref(old_target));

    let mut tx = stm.begin();
    // Overwrite the only reference to `old_target`; abort must be able
    // to restore it, so the undo log keeps it alive across GC.
    tx.write(holder, 1, Word::null()).unwrap();
    let outcome = heap.collect(&RootSet::from(vec![holder]), &[stm.gc_participant()]);
    assert_eq!(outcome.swept, 0, "undo-log old value must be a GC root");
    assert!(heap.is_valid(old_target));

    tx.abort();
    assert_eq!(heap.load(holder, 1).as_ref(), Some(old_target));
}

#[test]
fn gc_trims_dead_read_log_entries() {
    let (heap, class, stm) = setup();
    let root = heap.alloc(class).unwrap();
    let doomed = heap.alloc(class).unwrap();

    let mut tx = stm.begin();
    tx.read(doomed, 0).unwrap();
    tx.read(root, 0).unwrap();
    assert_eq!(tx.read_set_size(), 2);

    let outcome = heap.collect(&RootSet::from(vec![root]), &[stm.gc_participant()]);
    assert_eq!(outcome.swept, 1);
    assert_eq!(tx.read_set_size(), 1, "dead read-log entry trimmed");
    assert!(stm.stats().gc_trimmed_entries >= 1);
    tx.commit().unwrap();
}

#[test]
fn stats_flush_on_finish() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    let mut tx = stm.begin();
    tx.read(obj, 0).unwrap();
    tx.write(obj, 1, Word::from_scalar(1)).unwrap();
    tx.commit().unwrap();
    let s = stm.stats();
    assert_eq!(s.begins, 1);
    assert_eq!(s.commits, 1);
    assert_eq!(s.open_read_ops, 1);
    assert_eq!(s.open_update_ops, 1);
    assert_eq!(s.log_undo_ops, 1);
    assert_eq!(s.acquires, 1);
    assert!(s.validations >= 1);
}

#[test]
fn concurrent_disjoint_transfers_preserve_total() {
    let heap = Arc::new(Heap::new());
    let class = heap.define_class(ClassDesc::with_var_fields("Acct", &["bal"]));
    let accounts: Vec<_> = (0..16)
        .map(|_| {
            let a = heap.alloc(class).unwrap();
            heap.store(a, 0, Word::from_scalar(1000));
            a
        })
        .collect();
    let stm = Stm::new(heap.clone());

    std::thread::scope(|scope| {
        for t in 0..8usize {
            let stm = &stm;
            let accounts = &accounts;
            scope.spawn(move || {
                let mut seed = t as u64 + 1;
                for _ in 0..500 {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let from = (seed >> 32) as usize % accounts.len();
                    let to = (seed >> 40) as usize % accounts.len();
                    if from == to {
                        continue;
                    }
                    stm.atomically(|tx| {
                        let fb = tx.read(accounts[from], 0)?.as_scalar().unwrap();
                        let tb = tx.read(accounts[to], 0)?.as_scalar().unwrap();
                        tx.write(accounts[from], 0, Word::from_scalar(fb - 1))?;
                        tx.write(accounts[to], 0, Word::from_scalar(tb + 1))?;
                        Ok(())
                    });
                }
            });
        }
    });

    let total: i64 = accounts.iter().map(|a| heap.load(*a, 0).as_scalar().unwrap()).sum();
    assert_eq!(total, 16 * 1000, "money conserved under contention");
    assert!(stm.stats().commits >= 1);
}

#[test]
fn or_else_takes_first_when_it_succeeds() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    let got = stm.atomically(|tx| tx.or_else(|tx| tx.read(obj, 0), |_| Ok(Word::from_scalar(99))));
    assert_eq!(got.as_scalar(), Some(0));
}

#[test]
fn or_else_rolls_back_first_and_runs_second() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    stm.atomically(|tx| {
        tx.or_else(
            |tx| {
                tx.write(obj, 0, Word::from_scalar(1))?; // must be undone
                Err(TxError::EXPLICIT)
            },
            |tx| tx.write(obj, 1, Word::from_scalar(2)),
        )
    });
    assert_eq!(heap.load(obj, 0).as_scalar(), Some(0), "first alternative rolled back");
    assert_eq!(heap.load(obj, 1).as_scalar(), Some(2));
}

#[test]
fn or_else_propagates_real_conflicts() {
    let (heap, class, stm) =
        setup_with(StmConfig { cm: CmPolicy::AbortSelf, ..StmConfig::default() });
    let obj = heap.alloc(class).unwrap();
    let mut holder = stm.begin();
    holder.open_for_update(obj).unwrap();

    let mut tx = stm.begin();
    let result = tx.or_else(
        |tx| tx.open_for_update(obj).map(|_| 0),
        |_| Ok(1), // must NOT run: Busy is a real conflict, not a retry
    );
    assert_eq!(result, Err(TxError::BUSY));
    tx.abort();
    holder.abort();
}

#[test]
fn or_else_retry_from_second_reaches_the_outer_loop() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    let mut attempts = 0;
    stm.atomically(|tx| {
        attempts += 1;
        if attempts < 3 {
            return tx.or_else(|_| Err(TxError::EXPLICIT), |_| Err(TxError::EXPLICIT));
        }
        tx.write(obj, 0, Word::from_scalar(attempts))
    });
    assert_eq!(heap.load(obj, 0).as_scalar(), Some(3));
}

impl crate::Transaction<'_> {
    /// Test helper: abort without consuming pattern friction.
    fn abort_internal_for_test(self) {
        self.abort();
    }
}

// ---------------------------------------------------------------------
// Contention management: priority policies, dooming, serial fallback.
// ---------------------------------------------------------------------

#[test]
fn oldest_wins_dooms_younger_owner() {
    let (heap, class, stm) = setup_with(StmConfig {
        cm: CmPolicy::OldestWins,
        doom_wait_spins: 64,
        ..StmConfig::default()
    });
    let obj = heap.alloc(class).unwrap();
    heap.store(obj, 0, Word::from_scalar(5));

    let mut older = stm.begin(); // lower serial ⇒ higher priority
    let mut younger = stm.begin();
    younger.write(obj, 0, Word::from_scalar(6)).unwrap();

    // The older transaction dooms the younger; with a single thread the
    // victim cannot release mid-wait, so the bounded doom wait ends in
    // a Busy abort for the older — but the doom flag is set.
    assert_eq!(older.open_for_update(obj), Err(TxError::BUSY));
    assert!(younger.is_doomed());
    assert_eq!(stm.stats().dooms_issued, 0, "dooms flush when the doomer finishes");

    // The victim observes its doom at the next open and at commit.
    assert_eq!(younger.open_for_read(obj), Err(TxError::DOOMED));
    assert_eq!(younger.commit(), Err(TxError::DOOMED));
    // Its in-place update was rolled back and ownership released.
    assert_eq!(heap.load(obj, 0).as_scalar(), Some(5));
    older.abort();

    let s = stm.stats();
    assert_eq!(s.aborts_doomed, 1);
    assert_eq!(s.dooms_issued, 1);
}

#[test]
fn oldest_wins_younger_defers_to_older_owner() {
    let (heap, class, stm) =
        setup_with(StmConfig { cm: CmPolicy::OldestWins, ..StmConfig::default() });
    let obj = heap.alloc(class).unwrap();

    let mut older = stm.begin();
    older.open_for_update(obj).unwrap();
    let mut younger = stm.begin();
    // The younger waits out its patience, then aborts itself; the older
    // is never doomed.
    assert_eq!(younger.open_for_update(obj), Err(TxError::BUSY));
    assert!(!older.is_doomed());
    assert!(younger.counters().cm_spins > 0);
    younger.abort();
    older.commit().unwrap();
}

#[test]
fn karma_work_beats_age() {
    let (heap, class, stm) =
        setup_with(StmConfig { cm: CmPolicy::Karma, doom_wait_spins: 64, ..StmConfig::default() });
    let objs: Vec<_> = (0..10).map(|_| heap.alloc(class).unwrap()).collect();
    let hot = heap.alloc(class).unwrap();

    let mut older = stm.begin();
    older.open_for_update(hot).unwrap(); // karma 1
    let mut younger = stm.begin();
    for o in &objs {
        younger.open_for_read(*o).unwrap(); // karma 10
    }
    // Despite being younger, the high-karma transaction wins the
    // arbitration and dooms the older owner.
    assert_eq!(younger.open_for_update(hot), Err(TxError::BUSY)); // bounded wait, single thread
    assert!(older.is_doomed());
    assert_eq!(older.commit(), Err(TxError::DOOMED));
    younger.abort();
    assert_eq!(stm.stats().aborts_doomed, 1);
}

#[test]
fn doomed_atomically_retries_and_succeeds() {
    // A doomed retry-loop transaction must come back and commit.
    let (heap, class, stm) = setup_with(StmConfig {
        cm: CmPolicy::OldestWins,
        doom_wait_spins: 16,
        ..StmConfig::default()
    });
    let obj = heap.alloc(class).unwrap();

    let mut doomed_once = false;
    stm.atomically(|tx| {
        if !doomed_once {
            // Simulate being doomed mid-flight by a higher-priority
            // transaction's contention manager.
            tx.ctl_arc().doomed.store(true, Ordering::Release);
            doomed_once = true;
        }
        let n = tx.read(obj, 0)?.as_scalar().unwrap();
        tx.write(obj, 0, Word::from_scalar(n + 1))
    });
    assert_eq!(heap.load(obj, 0).as_scalar(), Some(1));
    assert_eq!(stm.stats().aborts_doomed, 1);
    assert_eq!(stm.stats().commits, 1);
}

#[test]
fn retry_carries_priority_and_karma_across_attempts() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    let mut seen: Vec<(u64, u64)> = Vec::new();
    let _ = stm.try_atomically(|tx| {
        tx.open_for_read(obj)?; // karma +1 each attempt
        let ctl = tx.ctl_arc();
        seen.push((ctl.priority(), ctl.karma()));
        if seen.len() < 3 {
            return Err(TxError::EXPLICIT);
        }
        Ok(())
    });
    assert_eq!(seen.len(), 3);
    let first_priority = seen[0].0;
    assert!(seen.iter().all(|&(p, _)| p == first_priority), "age pinned to first attempt");
    assert_eq!(seen[0].1, 1);
    assert_eq!(seen[1].1, 2, "karma accumulates across retries");
    assert_eq!(seen[2].1, 3);
}

#[test]
fn serial_mode_entered_after_consecutive_aborts() {
    let (_heap, _class, stm) = setup_with(StmConfig {
        serial_after_aborts: Some(2),
        max_retries: 5,
        ..StmConfig::default()
    });
    let result: Result<(), _> = stm.try_atomically(|_tx| Err(TxError::EXPLICIT));
    assert!(matches!(result, Err(crate::RetryExhausted::Conflicts { attempts: 6, .. })));
    // Attempts begin with 0..=5 prior failures; those with >= 2 run
    // serially: attempts 3, 4, 5 and 6 → four serial entries.
    assert_eq!(stm.stats().serial_entries, 4);
}

#[test]
fn serial_fallback_disabled_when_none() {
    let (_heap, _class, stm) =
        setup_with(StmConfig { serial_after_aborts: None, max_retries: 5, ..StmConfig::default() });
    let _: Result<(), _> = stm.try_atomically(|_tx| Err(TxError::EXPLICIT));
    assert_eq!(stm.stats().serial_entries, 0);
}

#[test]
fn try_atomically_reports_busy_exhaustion_against_a_holder() {
    // Deterministic RetryExhausted with a real conflict: a manual
    // transaction holds the object for the whole budget.
    let (heap, class, stm) = setup_with(StmConfig {
        cm: CmPolicy::AbortSelf,
        max_retries: 3,
        serial_after_aborts: None,
        ..StmConfig::default()
    });
    let obj = heap.alloc(class).unwrap();
    let mut holder = stm.begin();
    holder.open_for_update(obj).unwrap();

    let result = stm.try_atomically(|tx| tx.open_for_update(obj));
    match result {
        Err(crate::RetryExhausted::Conflicts { attempts, last }) => {
            assert_eq!(attempts, 4);
            assert_eq!(last, ConflictKind::Busy);
        }
        other => panic!("expected Busy exhaustion, got {other:?}"),
    }
    assert_eq!(stm.stats().aborts_busy, 4);
    holder.abort();
}

// ---------------------------------------------------------------------
// Deadlines: the give-up half of the retry budget.
// ---------------------------------------------------------------------

use std::time::Duration;

#[test]
fn deadline_gives_up_with_typed_error() {
    let (_heap, _class, stm) = setup_with(StmConfig {
        serial_after_aborts: None,
        backoff_cap_log2: 4,
        ..StmConfig::default()
    });
    let result: Result<(), _> =
        stm.try_atomically_within(Duration::from_millis(5), |_tx| Err(TxError::EXPLICIT));
    match result {
        Err(crate::RetryExhausted::DeadlineExceeded { attempts }) => {
            assert!(attempts >= 1, "at least one attempt ran before the deadline");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(stm.stats().deadlines_exceeded, 1);
    assert_eq!(stm.stats().give_ups(), 1);
}

#[test]
fn expired_deadline_sheds_before_first_attempt() {
    let (_heap, _class, stm) = setup();
    let mut runs = 0;
    let result: Result<(), _> = stm.try_atomically_within(Duration::ZERO, |_tx| {
        runs += 1;
        Ok(())
    });
    assert!(matches!(result, Err(crate::RetryExhausted::DeadlineExceeded { attempts: 0 })));
    assert_eq!(runs, 0, "an already-expired deadline never runs the closure");
    assert_eq!(stm.stats().deadlines_exceeded, 1);
}

#[test]
fn config_deadline_applies_to_try_atomically() {
    let (_heap, _class, stm) = setup_with(StmConfig {
        tx_deadline: Some(Duration::from_millis(5)),
        serial_after_aborts: None,
        backoff_cap_log2: 4,
        ..StmConfig::default()
    });
    let result: Result<(), _> = stm.try_atomically(|_tx| Err(TxError::EXPLICIT));
    assert!(matches!(result, Err(crate::RetryExhausted::DeadlineExceeded { .. })));
}

#[test]
fn deadline_escalates_atomically_into_serial_mode() {
    // `atomically` cannot return an error, so a passed deadline forces
    // the next attempt into exclusive serial mode, which cannot lose a
    // conflict race — bounded completion instead of a give-up.
    let (_heap, _class, stm) = setup_with(StmConfig {
        tx_deadline: Some(Duration::ZERO),
        serial_after_aborts: None,
        ..StmConfig::default()
    });
    let mut runs = 0;
    let v = stm.atomically(|_tx| {
        runs += 1;
        if runs == 1 {
            Err(TxError::EXPLICIT)
        } else {
            Ok(42)
        }
    });
    assert_eq!(v, 42);
    assert_eq!(stm.stats().serial_entries, 1, "retry after the deadline ran serially");
    assert_eq!(stm.stats().deadlines_exceeded, 0, "infallible loops never give up");
}

#[test]
fn closure_returned_deadline_error_ends_the_loop() {
    let (_heap, _class, stm) = setup();
    let mut runs = 0;
    let result: Result<(), _> = stm.try_atomically(|_tx| {
        runs += 1;
        Err(TxError::DeadlineExceeded)
    });
    assert!(matches!(result, Err(crate::RetryExhausted::DeadlineExceeded { attempts: 1 })));
    assert_eq!(runs, 1, "DeadlineExceeded is not retryable");
}

#[test]
fn conflict_exhaustion_counts_as_retries_exhausted() {
    let (_heap, _class, stm) =
        setup_with(StmConfig { max_retries: 2, serial_after_aborts: None, ..StmConfig::default() });
    let result: Result<(), _> = stm.try_atomically(|_tx| Err(TxError::EXPLICIT));
    assert!(matches!(result, Err(crate::RetryExhausted::Conflicts { attempts: 3, .. })));
    let s = stm.stats();
    assert_eq!(s.retries_exhausted, 1);
    assert_eq!(s.deadlines_exceeded, 0);
    assert_eq!(s.give_ups(), 1);
}

// ---------------------------------------------------------------------
// Panic safety: a panicking closure must leave no trace in the heap.
// ---------------------------------------------------------------------

#[test]
fn panic_in_body_rolls_back_before_unwinding() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    heap.store(obj, 0, Word::from_scalar(10));

    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        stm.atomically(|tx| {
            tx.write(obj, 0, Word::from_scalar(99))?;
            panic!("boom");
            #[allow(unreachable_code)]
            Ok(())
        })
    }));
    assert!(caught.is_err());
    // The in-place update was undone and ownership released before the
    // unwind reached us.
    assert_eq!(heap.load(obj, 0).as_scalar(), Some(10));
    assert!(matches!(
        StmWord::decode(heap.header_atomic(obj).load(Ordering::Acquire)),
        StmWord::Version(_)
    ));
    assert_eq!(stm.registry().active_count(), 0);
    let s = stm.stats();
    assert_eq!(s.panics_unwound, 1);
    assert_eq!(s.aborts_explicit, 1);

    // The runtime is fully usable afterwards.
    stm.atomically(|tx| tx.write(obj, 0, Word::from_scalar(11)));
    assert_eq!(heap.load(obj, 0).as_scalar(), Some(11));
}

#[test]
fn panic_after_open_for_update_releases_ownership() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();

    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        stm.atomically(|tx| {
            tx.open_for_update(obj)?;
            panic!("boom after acquire");
            #[allow(unreachable_code)]
            Ok(())
        })
    }));
    assert!(caught.is_err());
    assert_eq!(stm.stats().panics_unwound, 1);
    // No orphan, no squatting owner: another thread's transaction can
    // acquire the object immediately (no recovery involved).
    assert_eq!(stm.registry().orphan_count(), 0);
    let mut tx = stm.begin();
    tx.write(obj, 0, Word::from_scalar(5)).unwrap();
    tx.commit().unwrap();
    assert_eq!(stm.stats().orphans_recovered, 0);
}

#[test]
fn panic_in_serial_mode_releases_the_gate() {
    // The exclusive serial-mode gate is held across the attempt; a
    // panic inside it must release the gate during the unwind or every
    // later transaction deadlocks.
    let (_heap, _class, stm) =
        setup_with(StmConfig { serial_after_aborts: Some(1), ..StmConfig::default() });
    let mut runs = 0;
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        stm.atomically(|_tx| -> crate::TxResult<()> {
            runs += 1;
            if runs == 1 {
                Err(TxError::EXPLICIT) // escalate the next attempt to serial
            } else {
                panic!("boom in serial mode");
            }
        })
    }));
    assert!(caught.is_err());
    assert_eq!(stm.stats().serial_entries, 1);
    // Gate released: an ordinary transaction proceeds without blocking.
    let v = stm.atomically(|_tx| Ok(7));
    assert_eq!(v, 7);
}

// ---------------------------------------------------------------------
// Failpoints: deterministic fault injection and orphan recovery.
// ---------------------------------------------------------------------

use crate::failpoint::{sites, FailAction, Trigger};

#[test]
fn failpoint_abort_at_commit_is_survivable() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    stm.failpoints().set(sites::COMMIT_BEFORE_VALIDATE, FailAction::Abort, Trigger::Once);
    stm.atomically(|tx| tx.write(obj, 0, Word::from_scalar(9)));
    assert_eq!(heap.load(obj, 0).as_scalar(), Some(9));
    let s = stm.stats();
    assert_eq!(s.failpoint_fires, 1);
    assert_eq!(s.aborts_explicit, 1);
    assert_eq!(s.commits, 1);
}

#[test]
fn failpoint_delay_does_not_change_semantics() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    stm.failpoints().set(sites::COMMIT_BEFORE_RELEASE, FailAction::Delay(100), Trigger::Always);
    stm.atomically(|tx| tx.write(obj, 0, Word::from_scalar(3)));
    assert_eq!(heap.load(obj, 0).as_scalar(), Some(3));
    assert_eq!(stm.stats().commits, 1);
    assert!(stm.stats().failpoint_fires >= 1);
}

#[test]
fn kill_after_acquire_is_recovered_by_contender() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    heap.store(obj, 0, Word::from_scalar(7));

    stm.failpoints().set(sites::OPEN_UPDATE_AFTER_ACQUIRE, FailAction::Kill, Trigger::Once);
    let mut victim = stm.begin();
    assert_eq!(victim.write(obj, 0, Word::from_scalar(8)), Err(TxError::DOOMED));
    drop(victim);
    // The dead transaction still owns the object; its logs are parked.
    assert!(matches!(
        StmWord::decode(heap.header_atomic(obj).load(Ordering::Acquire)),
        StmWord::Owned { .. }
    ));
    assert_eq!(stm.registry().active_count(), 0);
    assert_eq!(stm.registry().orphan_count(), 1);

    // A later transaction stumbles on the orphan, recovers it, and
    // proceeds — no operator intervention.
    let mut other = stm.begin();
    other.write(obj, 0, Word::from_scalar(9)).unwrap();
    other.commit().unwrap();
    assert_eq!(heap.load(obj, 0).as_scalar(), Some(9));

    let s = stm.stats();
    assert_eq!(s.txs_killed, 1);
    assert_eq!(s.orphans_recovered, 1);
    assert_eq!(stm.registry().orphan_count(), 0);
}

#[test]
fn kill_before_release_leaves_torn_state_that_recovery_undoes() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    heap.store(obj, 0, Word::from_scalar(10));

    stm.failpoints().set(sites::COMMIT_BEFORE_RELEASE, FailAction::Kill, Trigger::Once);
    let mut victim = stm.begin();
    victim.write(obj, 0, Word::from_scalar(99)).unwrap();
    assert_eq!(victim.commit(), Err(TxError::DOOMED));
    // Validation passed, the in-place update is in the heap, ownership
    // is held — maximal torn state.
    assert_eq!(heap.load(obj, 0).as_scalar(), Some(99));

    let mut other = stm.begin();
    other.open_for_update(obj).unwrap(); // triggers recovery
                                         // Recovery replayed the orphan's undo log: exact pre-state.
    assert_eq!(other.read(obj, 0).unwrap().as_scalar(), Some(10));
    other.abort();
    assert_eq!(heap.load(obj, 0).as_scalar(), Some(10));
    assert_eq!(stm.stats().orphans_recovered, 1);
}

#[test]
fn reader_validation_recovers_a_killed_owner() {
    // A read-only transaction never calls `open_for_update`, so the
    // contend-path recovery trigger can't help it. Validation itself
    // must recover orphans, or an orphan squatting on a key dooms every
    // reader of that key forever.
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    heap.store(obj, 0, Word::from_scalar(10));

    let mut reader = stm.begin();
    assert_eq!(reader.read(obj, 0).unwrap().as_scalar(), Some(10));

    stm.failpoints().set(sites::COMMIT_BEFORE_RELEASE, FailAction::Kill, Trigger::Once);
    let mut victim = stm.begin();
    victim.write(obj, 0, Word::from_scalar(99)).unwrap();
    assert_eq!(victim.commit(), Err(TxError::DOOMED));
    assert_eq!(stm.registry().orphan_count(), 1);

    // The reader's commit fails (it raced the torn write) *and*
    // recovers the orphan on its way out.
    assert_eq!(reader.commit(), Err(TxError::INVALID));
    assert_eq!(stm.stats().orphans_recovered, 1);
    assert_eq!(stm.registry().orphan_count(), 0);

    // A pure read-only retry now succeeds against the restored value.
    let mut retry = stm.begin();
    assert_eq!(retry.read(obj, 0).unwrap().as_scalar(), Some(10));
    retry.commit().unwrap();
}

#[test]
fn kill_during_rollback_orphans_with_updates_in_place() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    heap.store(obj, 0, Word::from_scalar(1));

    stm.failpoints().set(sites::ABORT_BEFORE_UNDO, FailAction::Kill, Trigger::Once);
    let mut victim = stm.begin();
    victim.write(obj, 0, Word::from_scalar(2)).unwrap();
    victim.abort(); // dies at the top of rollback, nothing undone
    assert_eq!(heap.load(obj, 0).as_scalar(), Some(2), "update still in place");
    assert_eq!(stm.registry().orphan_count(), 1);

    let mut other = stm.begin();
    other.open_for_update(obj).unwrap();
    assert_eq!(other.read(obj, 0).unwrap().as_scalar(), Some(1), "recovery restored pre-state");
    other.commit().unwrap();
}

#[test]
fn seeded_probabilistic_aborts_are_reproducible() {
    let run = |seed: u64| {
        let (heap, class, stm) = setup();
        let obj = heap.alloc(class).unwrap();
        stm.failpoints().set(
            sites::COMMIT_BEFORE_VALIDATE,
            FailAction::Abort,
            Trigger::Prob { p: 0.3, seed },
        );
        for _ in 0..32 {
            stm.atomically(|tx| {
                let n = tx.read(obj, 0)?.as_scalar().unwrap();
                tx.write(obj, 0, Word::from_scalar(n + 1))
            });
        }
        assert_eq!(heap.load(obj, 0).as_scalar(), Some(32));
        stm.stats().failpoint_fires
    };
    let fires = run(0xFA11);
    assert_eq!(fires, run(0xFA11), "same seed ⇒ same injected-abort schedule");
    assert!(fires > 0, "p=0.3 over ≥32 commits should fire at least once");
}

// ---------------------------------------------------------------------
// Commit-sequence clock: validation fast path, watermark, ablation.
// ---------------------------------------------------------------------

#[test]
fn read_only_commit_takes_the_validation_fast_path() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    heap.store(obj, 0, Word::from_scalar(7));

    let mut tx = stm.begin();
    assert_eq!(tx.read(obj, 0).unwrap().as_scalar(), Some(7));
    tx.commit().unwrap();

    let s = stm.stats();
    assert_eq!(s.commits, 1);
    assert_eq!(s.validations, 1);
    assert_eq!(s.validation_fast_path, 1, "clock unchanged ⇒ no read-log scan");
    assert_eq!(s.validation_entries_scanned, 0);
    assert_eq!(stm.commit_clock(), 0, "read-only commits never bump the clock");
}

#[test]
fn writer_commits_bump_the_clock_and_force_a_full_rescan() {
    let (heap, class, stm) = setup();
    let a = heap.alloc(class).unwrap();
    let b = heap.alloc(class).unwrap();

    let mut reader = stm.begin();
    reader.read(a, 0).unwrap();

    // An unrelated writer publishes an update: the clock moves.
    let mut writer = stm.begin();
    writer.write(b, 0, Word::from_scalar(1)).unwrap();
    writer.commit().unwrap();
    assert_eq!(stm.commit_clock(), 1);

    reader.validate().unwrap();
    assert_eq!(reader.counters().validation_fast_path, 0, "clock moved ⇒ full pass");
    assert_eq!(reader.counters().validation_entries_scanned, 1);

    // The pass refreshed the snapshot; with no further commits the next
    // validation is O(1) again.
    reader.validate().unwrap();
    assert_eq!(reader.counters().validation_fast_path, 1);
    assert_eq!(reader.counters().validation_entries_scanned, 1);
    reader.commit().unwrap();
}

#[test]
fn aborted_writers_do_not_bump_the_clock() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();

    let mut writer = stm.begin();
    writer.write(obj, 0, Word::from_scalar(9)).unwrap();
    writer.abort();
    // Rollback restored the exact pre-state before releasing ownership,
    // so nothing a reader could have fast-pathed across was published.
    assert_eq!(stm.commit_clock(), 0);

    let mut reader = stm.begin();
    reader.read(obj, 0).unwrap();
    reader.commit().unwrap();
    assert_eq!(stm.stats().validation_fast_path, 1);
}

#[test]
fn epoch_bump_is_checked_before_the_clock_shortcut() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();

    let mut tx = stm.begin();
    tx.read(obj, 0).unwrap();
    // Advance the epoch without any commit: the clock is untouched, so
    // a clock-first validation would silently (and wrongly) pass.
    stm.bump_epoch();
    assert_eq!(stm.commit_clock(), 0);
    assert_eq!(tx.validate(), Err(TxError::EPOCH));
    assert_eq!(tx.counters().validation_fast_path, 0, "EPOCH must never be fast-pathed away");
    tx.abort();
}

#[test]
fn version_overflow_epoch_bump_forces_the_slow_path_and_epoch_abort() {
    let (heap, class, stm) = setup_with(StmConfig { version_bits: 2, ..StmConfig::default() });
    let obj = heap.alloc(class).unwrap();
    let other = heap.alloc(class).unwrap();

    let mut spanning = stm.begin();
    spanning.read(other, 0).unwrap();
    spanning.validate().unwrap();
    assert_eq!(spanning.counters().validation_fast_path, 1, "pre-wrap validation fast-paths");

    // Wrap the version space: the last commit bumps the global epoch
    // (and, like every update commit, the commit-sequence clock).
    for i in 0..4 {
        let mut tx = stm.begin();
        tx.write(obj, 0, Word::from_scalar(i)).unwrap();
        tx.commit().unwrap();
    }
    // The epoch moved between the snapshot refresh and the commit: the
    // outcome is an EPOCH abort, never a silent fast-path skip.
    assert_eq!(spanning.commit(), Err(TxError::EPOCH));
}

#[test]
fn doomed_is_observed_before_the_clock_shortcut() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();

    let mut tx = stm.begin();
    tx.read(obj, 0).unwrap();
    // Every fast-path precondition holds (clock unchanged, clean read
    // log) — yet the doom flag must win.
    tx.ctl_arc().doomed.store(true, Ordering::Release);
    assert_eq!(tx.validate(), Err(TxError::Conflict(ConflictKind::Doomed)));
    assert_eq!(tx.counters().validation_fast_path, 0);
    assert_eq!(tx.commit(), Err(TxError::DOOMED));
}

#[test]
fn foreign_owner_in_read_log_disables_the_fast_path() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();

    let mut owner = stm.begin();
    owner.open_for_update(obj).unwrap();

    let mut reader = stm.begin();
    reader.read(obj, 0).unwrap(); // observes the foreign Owned word
                                  // The acquisition predates the reader's clock snapshots and the
                                  // owner's in-place stores bump no clock, so the clocks cannot vouch
                                  // for this entry — the fast path must stand down.
    assert_eq!(reader.validate(), Err(TxError::INVALID));
    assert_eq!(reader.counters().validation_fast_path, 0);
    assert_eq!(reader.counters().validation_entries_scanned, 1);
    owner.abort();
}

#[test]
fn poisoned_tail_rescans_only_past_the_watermark() {
    let (heap, class, stm) = setup();
    let a = heap.alloc(class).unwrap();
    let b = heap.alloc(class).unwrap();

    // The acquisition happens before the reader begins, so both clocks
    // stay quiescent from the reader's point of view.
    let mut owner = stm.begin();
    owner.open_for_update(b).unwrap();

    let mut reader = stm.begin();
    reader.read(a, 0).unwrap();
    reader.validate().unwrap(); // watermark now covers entry 0
    assert_eq!(reader.counters().validation_fast_path, 1);

    reader.read(b, 0).unwrap(); // poisons the fast path

    // Clocks unchanged: they still vouch for the covered prefix, so
    // only the tail (the offending entry) is scanned.
    assert_eq!(reader.validate(), Err(TxError::INVALID));
    assert_eq!(reader.counters().validation_entries_scanned, 1);
    owner.abort();
}

#[test]
fn rollback_to_savepoint_restores_fast_path_eligibility() {
    let (heap, class, stm) = setup();
    let a = heap.alloc(class).unwrap();
    let b = heap.alloc(class).unwrap();

    let mut owner = stm.begin();
    owner.open_for_update(b).unwrap();

    let mut reader = stm.begin();
    reader.read(a, 0).unwrap();
    let sp = reader.savepoint();
    reader.read(b, 0).unwrap(); // poisons the fast path
    reader.rollback_to(sp); // ...and the poisoning entry is truncated away
    owner.abort();

    reader.validate().unwrap();
    assert_eq!(reader.counters().validation_fast_path, 1, "poison recomputed after rollback");
    reader.commit().unwrap();
}

#[test]
fn in_flight_acquisition_defeats_the_fast_path() {
    let (heap, class, stm) = setup();
    let obj = heap.alloc(class).unwrap();
    heap.store(obj, 0, Word::from_scalar(1));

    let mut reader = stm.begin();
    assert_eq!(reader.read(obj, 0).unwrap().as_scalar(), Some(1));

    // A writer acquires the object and stores in place *after* the
    // reader opened it, without committing: the commit clock stays
    // parked, but the acquisition clock moves.
    let mut writer = stm.begin();
    writer.write(obj, 0, Word::from_scalar(99)).unwrap();
    assert_eq!(stm.commit_clock(), 0);

    // Direct update makes the uncommitted store observable; the
    // validation fast path must stand down and the scan must abort the
    // reader (observed Version vs current foreign Owned).
    assert_eq!(reader.load_direct(obj, 0).as_scalar(), Some(99), "dirty read is observable");
    assert_eq!(reader.validate(), Err(TxError::INVALID));
    assert_eq!(reader.counters().validation_fast_path, 0);
    assert_eq!(reader.commit(), Err(TxError::INVALID));
    writer.abort();
}

#[test]
fn acquisition_after_watermark_refresh_forces_a_full_rescan() {
    let (heap, class, stm) = setup();
    let a = heap.alloc(class).unwrap();
    let b = heap.alloc(class).unwrap();

    let mut reader = stm.begin();
    reader.read(a, 0).unwrap();
    reader.read(b, 0).unwrap();
    reader.validate().unwrap(); // watermark covers both entries
    assert_eq!(reader.counters().validation_fast_path, 1);

    // An acquisition *inside* the watermark-covered prefix: the clocks
    // may no longer vouch for the prefix, so the next validation must
    // rescan it (and reject the now-owned entry) rather than fast-path
    // or tail-scan.
    let mut writer = stm.begin();
    writer.write(a, 0, Word::from_scalar(7)).unwrap();

    assert_eq!(reader.validate(), Err(TxError::INVALID));
    assert_eq!(reader.counters().validation_fast_path, 1, "no further fast path");
    assert!(reader.counters().validation_entries_scanned >= 1, "the prefix was rescanned");
    writer.abort();
}

#[test]
fn mid_validation_catches_an_in_flight_writer() {
    // Zombie containment: `validate_every` re-validation is the
    // mechanism that stops a doomed transaction from computing on torn
    // reads, so it must never fast-path across an in-flight foreign
    // acquisition.
    let (heap, class, stm) =
        setup_with(StmConfig { validate_every: Some(2), ..StmConfig::default() });
    let x = heap.alloc(class).unwrap();
    let y = heap.alloc(class).unwrap();

    let mut reader = stm.begin();
    reader.read(x, 0).unwrap(); // one read: no mid-validation yet

    let mut writer = stm.begin();
    writer.write(x, 0, Word::from_scalar(13)).unwrap(); // uncommitted

    // The second read trips the periodic validation, which must scan
    // (the acquisition clock moved) and abort the zombie-to-be.
    assert_eq!(reader.read(y, 0), Err(TxError::INVALID));
    assert_eq!(reader.counters().mid_validations, 1);
    assert_eq!(reader.counters().validation_fast_path, 0);
    reader.abort();
    writer.abort();
}

#[test]
fn own_acquisitions_keep_the_fast_path_armed() {
    let (heap, class, stm) = setup();
    let a = heap.alloc(class).unwrap();
    let b = heap.alloc(class).unwrap();

    // A read-write transaction with no foreign activity: its own
    // acquisition bumps are discounted, so validation is still O(1).
    let mut tx = stm.begin();
    tx.read(a, 0).unwrap();
    tx.write(b, 0, Word::from_scalar(3)).unwrap();
    tx.validate().unwrap();
    assert_eq!(tx.counters().validation_fast_path, 1);
    assert_eq!(tx.counters().validation_entries_scanned, 0);
    tx.commit().unwrap();
    assert_eq!(stm.acquire_clock(), 1);
    assert_eq!(stm.commit_clock(), 1);
}

#[test]
fn knob_off_parks_both_clocks() {
    let (heap, class, stm) =
        setup_with(StmConfig { commit_sequence: false, ..StmConfig::default() });
    let obj = heap.alloc(class).unwrap();
    let mut tx = stm.begin();
    tx.write(obj, 0, Word::from_scalar(4)).unwrap();
    tx.commit().unwrap();
    assert_eq!(stm.commit_clock(), 0);
    assert_eq!(stm.acquire_clock(), 0);
}

#[test]
fn disabling_commit_sequence_restores_the_full_rescan_baseline() {
    // The same deterministic workload under both knob settings: commits,
    // reads, one invalidated zombie per round.
    let run = |commit_sequence: bool| {
        let (heap, class, stm) = setup_with(StmConfig { commit_sequence, ..StmConfig::default() });
        let objs: Vec<_> = (0..4).map(|_| heap.alloc(class).unwrap()).collect();
        for round in 0..3i64 {
            let mut audit = stm.begin();
            for o in &objs {
                audit.read(*o, 0).unwrap();
            }
            audit.commit().unwrap();

            let mut writer = stm.begin();
            writer.write(objs[0], 0, Word::from_scalar(round)).unwrap();
            writer.commit().unwrap();

            let mut zombie = stm.begin();
            zombie.read(objs[0], 0).unwrap();
            let mut rival = stm.begin();
            rival.write(objs[0], 0, Word::from_scalar(round + 100)).unwrap();
            rival.commit().unwrap();
            assert_eq!(zombie.commit(), Err(TxError::INVALID));
        }
        let values: Vec<_> = objs.iter().map(|o| heap.load(*o, 0).as_scalar().unwrap()).collect();
        (stm.stats(), values)
    };

    let (on, heap_on) = run(true);
    let (off, heap_off) = run(false);

    assert_eq!(heap_on, heap_off, "the knob must not change results");
    assert_eq!(off.validation_fast_path, 0, "knob off ⇒ the fast path never fires");
    assert!(on.validation_fast_path > 0);
    assert!(
        on.validation_entries_scanned < off.validation_entries_scanned,
        "the clock must save scans: {} !< {}",
        on.validation_entries_scanned,
        off.validation_entries_scanned
    );

    // Every pre-existing statistic is byte-identical across the ablation.
    let normalize = |mut s: crate::StmStatsSnapshot| {
        s.validation_fast_path = 0;
        s.validation_entries_scanned = 0;
        s
    };
    assert_eq!(normalize(on), normalize(off));
}

// ---------------------------------------------------------------------
// Deterministic schedule exploration: the explorer re-derives the
// cross-thread bugs this crate has fixed, from the test-only knobs that
// revert each fix. Each scenario's oracle rejects a *zombie commit* — a
// reader committing a value no writer ever committed.
// ---------------------------------------------------------------------

mod sched_regressions {
    use super::*;
    use omt_sched::{Execution, Explorer, RunOutcome, SchedConfig, ThreadBody};
    use std::sync::Mutex;

    /// Which fix to revert for one exploration.
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Revert {
        /// Sound tree: both fixes in place.
        Nothing,
        /// Validation's fast path consults the commit clock alone
        /// (reverts the PR 3 acquisition-clock check).
        AcquireClockCheck,
        /// Abort releases dirtied entries at their original version
        /// (reverts this PR's version-burn fix).
        AbortVersionBurn,
    }

    /// One reader racing one aborting writer on a single cell.
    ///
    /// The writer stores 1 in place and then aborts; no transaction
    /// ever commits an update, so a reader that *commits* having read 1
    /// observed uncommitted (later rolled-back) state — a
    /// serializability violation. Each knob opens a distinct window:
    ///
    /// - commit-clock-only: the reader validates while the writer still
    ///   owns the cell; with no commit ever published the commit clock
    ///   is quiescent, and without the acquisition clock the fast path
    ///   skips the scan that would see the `Owned` header.
    /// - abort-restores-version: the reader validates *after* the abort
    ///   released the cell back at its original version; the scan
    ///   passes because header word equals the logged word (the ABA the
    ///   version burn prevents).
    fn zombie_read_factory(revert: Revert) -> impl Fn() -> Execution {
        move || {
            let heap = Arc::new(Heap::new());
            let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["a", "b"]));
            let obj = heap.alloc(class).unwrap();
            let stm = Arc::new(Stm::with_config(
                heap.clone(),
                StmConfig { serial_after_aborts: None, ..StmConfig::default() },
            ));
            stm.set_test_unsound_commit_clock_only(revert == Revert::AcquireClockCheck);
            stm.set_test_unsound_abort_restores_version(revert == Revert::AbortVersionBurn);
            let committed_read = Arc::new(Mutex::new(None::<i64>));

            let reader: ThreadBody = Box::new({
                let stm = stm.clone();
                let out = committed_read.clone();
                move || {
                    let mut tx = stm.begin();
                    match tx.read(obj, 0) {
                        Ok(word) => {
                            let v = word.as_scalar().unwrap();
                            if tx.commit().is_ok() {
                                *out.lock().unwrap() = Some(v);
                            }
                        }
                        Err(_) => tx.abort(),
                    }
                }
            });
            let writer: ThreadBody = Box::new({
                let stm = stm.clone();
                move || {
                    let mut tx = stm.begin();
                    let _ = tx.write(obj, 0, Word::from_scalar(1));
                    tx.abort();
                }
            });
            Execution {
                threads: vec![reader, writer],
                check: Box::new(move || match *committed_read.lock().unwrap() {
                    Some(v) if v != 0 => Err(format!(
                        "zombie commit: reader committed {v}, but no writer ever committed"
                    )),
                    _ => Ok(()),
                }),
            }
        }
    }

    fn explorer() -> Explorer {
        Explorer::new(SchedConfig {
            preemption_bound: 3,
            random_walks: 0,
            ..SchedConfig::default()
        })
    }

    #[test]
    fn explorer_rederives_the_two_clock_bug() {
        let report = explorer().explore(&zombie_read_factory(Revert::AcquireClockCheck));
        let cx = report.counterexample.expect(
            "reverting the acquisition-clock check must reintroduce the PR 3 zombie commit",
        );
        assert!(cx.message.contains("zombie commit"), "{}", cx.message);
        // The counterexample replays deterministically.
        match explorer().replay(&zombie_read_factory(Revert::AcquireClockCheck), &cx.schedule) {
            RunOutcome::Fail { message } => assert!(message.contains("zombie commit")),
            o => panic!("counterexample must replay, got {o:?}"),
        }
        // And the *same schedule* passes on the fixed tree: the fix
        // closes exactly this interleaving.
        assert_eq!(
            explorer().replay(&zombie_read_factory(Revert::Nothing), &cx.schedule),
            RunOutcome::Pass,
            "schedule: {:?}\n{}",
            cx.schedule,
            cx.trace
        );
    }

    #[test]
    fn explorer_rederives_the_abort_version_aba_bug() {
        let report = explorer().explore(&zombie_read_factory(Revert::AbortVersionBurn));
        let cx = report
            .counterexample
            .expect("reverting the version burn must reintroduce the abort-ABA zombie commit");
        assert!(cx.message.contains("zombie commit"), "{}", cx.message);
        match explorer().replay(&zombie_read_factory(Revert::AbortVersionBurn), &cx.schedule) {
            RunOutcome::Fail { message } => assert!(message.contains("zombie commit")),
            o => panic!("counterexample must replay, got {o:?}"),
        }
        assert_eq!(
            explorer().replay(&zombie_read_factory(Revert::Nothing), &cx.schedule),
            RunOutcome::Pass
        );
    }

    #[test]
    fn fixed_tree_has_no_zombie_commit() {
        let report = explorer().explore(&zombie_read_factory(Revert::Nothing));
        assert!(report.passed(), "{}", report.counterexample.unwrap());
        assert!(report.exhausted, "the bounded space must be fully enumerated");
        assert_eq!(report.divergences, 0, "scenario must be schedule-deterministic");
    }

    /// A named boxed scenario factory (the unsound snapshot knobs
    /// produce distinct closure types, so the array boxes them).
    type NamedFactory = (&'static str, Box<dyn Fn() -> Execution>);

    /// Prints the minimized counterexample schedules (run with
    /// `--nocapture --ignored` to refresh the frozen schedules in
    /// `tests/sched_explore.rs`).
    #[test]
    #[ignore = "development aid: prints minimized schedules"]
    fn print_minimized_schedules() {
        for (name, revert) in
            [("two_clock", Revert::AcquireClockCheck), ("abort_aba", Revert::AbortVersionBurn)]
        {
            let report = explorer().explore(&zombie_read_factory(revert));
            let cx = report.counterexample.expect(name);
            println!("{name}: schedule {:?}\n{}", cx.schedule, cx.trace);
        }
        let snapshot_factories: [NamedFactory; 2] = [
            ("snapshot_recheck", Box::new(snapshot_zombie_factory(true))),
            ("torn_extension", Box::new(torn_extension_factory(true))),
        ];
        for (name, factory) in snapshot_factories {
            let report = explorer().explore(&factory);
            let cx = report.counterexample.expect(name);
            println!("{name}: schedule {:?}\n{}", cx.schedule, cx.trace);
        }
    }

    fn snapshot_config() -> StmConfig {
        StmConfig {
            serial_after_aborts: None,
            snapshot_reads: true,
            // Keep the bounded owner-wait short so the exploration tree
            // stays small; exhaustion falls back to the (sound)
            // optimistic path.
            doom_wait_spins: 3,
            ..StmConfig::default()
        }
    }

    /// One snapshot reader racing one aborting writer on a single cell
    /// (the snapshot-mode twin of `zombie_read_factory`).
    ///
    /// The writer stores 1 in place and aborts, so no update ever
    /// commits. A sound snapshot read cannot return the dirty 1: the
    /// seqlock re-check sees the header moved (at least to the writer's
    /// `Owned` word) and retries. With `skip_recheck` the first header
    /// is accepted unconditionally, the dirty value flows through, and
    /// the read-only commit skip — which trusts the sandwich — publishes
    /// a zombie.
    fn snapshot_zombie_factory(skip_recheck: bool) -> impl Fn() -> Execution {
        move || {
            let heap = Arc::new(Heap::new());
            let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["a", "b"]));
            let obj = heap.alloc(class).unwrap();
            let stm = Arc::new(Stm::with_config(heap.clone(), snapshot_config()));
            stm.set_test_unsound_snapshot_skip_recheck(skip_recheck);
            let committed_read = Arc::new(Mutex::new(None::<i64>));

            let reader: ThreadBody = Box::new({
                let stm = stm.clone();
                let out = committed_read.clone();
                move || {
                    let mut tx = stm.begin();
                    match tx.read(obj, 0) {
                        Ok(word) => {
                            let v = word.as_scalar().unwrap();
                            if tx.commit().is_ok() {
                                *out.lock().unwrap() = Some(v);
                            }
                        }
                        Err(_) => tx.abort(),
                    }
                }
            });
            let writer: ThreadBody = Box::new({
                let stm = stm.clone();
                move || {
                    let mut tx = stm.begin();
                    let _ = tx.write(obj, 0, Word::from_scalar(1));
                    tx.abort();
                }
            });
            Execution {
                threads: vec![reader, writer],
                check: Box::new(move || match *committed_read.lock().unwrap() {
                    Some(v) if v != 0 => Err(format!(
                        "zombie commit: reader committed {v}, but no writer ever committed"
                    )),
                    _ => Ok(()),
                }),
            }
        }
    }

    /// One snapshot reader racing one *committing* writer across two
    /// cells, probing opacity across a timestamp extension.
    ///
    /// The writer commits x=1, y=1 atomically from (0,0); the only
    /// serializable read pairs are (0,0) and (1,1). A reader that read
    /// x before the commit finds y too new and must *extend*: sound
    /// extension revalidates the read set, catches x having moved, and
    /// aborts. With `skip_revalidate` the extension fast-forwards
    /// `read_ver` without certifying x, and the reader commits the torn
    /// pair (0,1).
    fn torn_extension_factory(skip_revalidate: bool) -> impl Fn() -> Execution {
        move || {
            let heap = Arc::new(Heap::new());
            let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["a", "b"]));
            let x = heap.alloc(class).unwrap();
            let y = heap.alloc(class).unwrap();
            let stm = Arc::new(Stm::with_config(heap.clone(), snapshot_config()));
            stm.set_test_unsound_extension_skips_revalidate(skip_revalidate);
            let committed_pair = Arc::new(Mutex::new(None::<(i64, i64)>));

            let reader: ThreadBody = Box::new({
                let stm = stm.clone();
                let out = committed_pair.clone();
                move || {
                    let mut tx = stm.begin();
                    let result = (|| {
                        let a = tx.read(x, 0)?.as_scalar().unwrap();
                        let b = tx.read(y, 0)?.as_scalar().unwrap();
                        Ok::<_, TxError>((a, b))
                    })();
                    match result {
                        Ok(pair) => {
                            if tx.commit().is_ok() {
                                *out.lock().unwrap() = Some(pair);
                            }
                        }
                        Err(_) => tx.abort(),
                    }
                }
            });
            let writer: ThreadBody = Box::new({
                let stm = stm.clone();
                move || {
                    let mut tx = stm.begin();
                    let wrote = tx.write(x, 0, Word::from_scalar(1)).is_ok()
                        && tx.write(y, 0, Word::from_scalar(1)).is_ok();
                    if wrote {
                        let _ = tx.commit();
                    } else {
                        tx.abort();
                    }
                }
            });
            Execution {
                threads: vec![reader, writer],
                check: Box::new(move || match *committed_pair.lock().unwrap() {
                    Some((a, b)) if a != b => Err(format!(
                        "torn snapshot: reader committed ({a}, {b}), writer published \
                         x and y atomically"
                    )),
                    _ => Ok(()),
                }),
            }
        }
    }

    #[test]
    fn explorer_rederives_the_snapshot_recheck_zombie() {
        let report = explorer().explore(&snapshot_zombie_factory(true));
        let cx = report
            .counterexample
            .expect("skipping the snapshot re-check must reintroduce the dirty-read zombie");
        assert!(cx.message.contains("zombie commit"), "{}", cx.message);
        match explorer().replay(&snapshot_zombie_factory(true), &cx.schedule) {
            RunOutcome::Fail { message } => assert!(message.contains("zombie commit")),
            o => panic!("counterexample must replay, got {o:?}"),
        }
        // The same schedule passes with the re-check in place.
        assert_eq!(
            explorer().replay(&snapshot_zombie_factory(false), &cx.schedule),
            RunOutcome::Pass,
            "schedule: {:?}\n{}",
            cx.schedule,
            cx.trace
        );
    }

    #[test]
    fn explorer_rederives_the_torn_extension_bug() {
        let report = explorer().explore(&torn_extension_factory(true));
        let cx = report
            .counterexample
            .expect("an extension that skips revalidation must admit a torn snapshot");
        assert!(cx.message.contains("torn snapshot"), "{}", cx.message);
        match explorer().replay(&torn_extension_factory(true), &cx.schedule) {
            RunOutcome::Fail { message } => assert!(message.contains("torn snapshot")),
            o => panic!("counterexample must replay, got {o:?}"),
        }
        assert_eq!(
            explorer().replay(&torn_extension_factory(false), &cx.schedule),
            RunOutcome::Pass,
            "schedule: {:?}\n{}",
            cx.schedule,
            cx.trace
        );
    }

    #[test]
    fn snapshot_tree_has_no_zombie_commit() {
        let report = explorer().explore(&snapshot_zombie_factory(false));
        assert!(report.passed(), "{}", report.counterexample.unwrap());
        assert!(report.exhausted, "the bounded space must be fully enumerated");
        assert_eq!(report.divergences, 0, "scenario must be schedule-deterministic");
    }

    #[test]
    fn snapshot_tree_has_no_torn_extension() {
        let report = explorer().explore(&torn_extension_factory(false));
        assert!(report.passed(), "{}", report.counterexample.unwrap());
        assert!(report.exhausted, "the bounded space must be fully enumerated");
        assert_eq!(report.divergences, 0, "scenario must be schedule-deterministic");
    }
}

// ---------------------------------------------------------------------------
// Token allocation soundness: the 32-bit counter wraps, allocation must
// never reissue a live transaction's token (in any build) and never
// issue token 0 (the abstract-lock table's "free" encoding).
// ---------------------------------------------------------------------------

#[test]
fn token_wrap_skips_zero() {
    let (_heap, _class, stm) = setup();
    // Park the counter one before the wrap: the next draw takes
    // u32::MAX, the one after wraps onto 0 and must be skipped.
    stm.set_next_token_for_test(u32::MAX);
    let tx1 = stm.begin();
    assert_eq!(tx1.token().to_raw(), u32::MAX);
    let tx2 = stm.begin();
    assert_eq!(tx2.token().to_raw(), 1, "token 0 must never be issued");
}

#[test]
fn token_wrap_redraws_past_live_transactions() {
    let (_heap, _class, stm) = setup();
    stm.set_next_token_for_test(u32::MAX);
    let tx1 = stm.begin(); // holds u32::MAX
    let tx2 = stm.begin(); // wraps over 0, holds 1
    assert_eq!((tx1.token().to_raw(), tx2.token().to_raw()), (u32::MAX, 1));
    // Rewind onto the live tokens: a fresh begin must redraw past
    // u32::MAX (live), 0 (reserved), and 1 (live) and land on 2 —
    // in release builds too, where the old guard compiled away.
    stm.set_next_token_for_test(u32::MAX);
    let tx3 = stm.begin();
    assert_eq!(tx3.token().to_raw(), 2, "wrap must redraw past live tokens");
    drop((tx1, tx2));
    // With the collisions gone the rewound counter hands tokens out
    // directly again.
    stm.set_next_token_for_test(tx3.token().to_raw() + 1);
    let tx4 = stm.begin();
    assert_eq!(tx4.token().to_raw(), 3);
}

// ---------------------------------------------------------------------------
// Transaction-lifetime commit/abort handlers (boosting support).
// ---------------------------------------------------------------------------

mod handlers {
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::{Arc, Mutex};

    use super::*;

    #[test]
    fn commit_handlers_run_exactly_once_in_order() {
        let (heap, class, stm) = setup();
        let obj = heap.alloc(class).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let aborted = Arc::new(AtomicU32::new(0));
        let mut tx = stm.begin();
        for i in 0..3 {
            let order = order.clone();
            tx.on_commit(move || order.lock().unwrap().push(i));
            let aborted = aborted.clone();
            tx.on_abort(move || {
                aborted.fetch_add(1, Ordering::Relaxed);
            });
        }
        tx.write(obj, 0, Word::from_scalar(1)).unwrap();
        tx.commit().unwrap();
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2], "in registration order");
        assert_eq!(aborted.load(Ordering::Relaxed), 0, "abort list dropped unrun");
    }

    #[test]
    fn abort_handlers_run_in_reverse_order_commit_list_dropped() {
        let (_heap, _class, stm) = setup();
        let order = Arc::new(Mutex::new(Vec::new()));
        let committed = Arc::new(AtomicU32::new(0));
        let mut tx = stm.begin();
        for i in 0..3 {
            let order = order.clone();
            tx.on_abort(move || order.lock().unwrap().push(i));
            let committed = committed.clone();
            tx.on_commit(move || {
                committed.fetch_add(1, Ordering::Relaxed);
            });
        }
        tx.abort();
        assert_eq!(*order.lock().unwrap(), vec![2, 1, 0], "reverse registration order");
        assert_eq!(committed.load(Ordering::Relaxed), 0, "commit list dropped unrun");
    }

    #[test]
    fn drop_of_active_transaction_runs_abort_handlers() {
        let (_heap, _class, stm) = setup();
        let ran = Arc::new(AtomicU32::new(0));
        let mut tx = stm.begin();
        let r = ran.clone();
        tx.on_abort(move || {
            r.fetch_add(1, Ordering::Relaxed);
        });
        drop(tx);
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panicking_handler_does_not_starve_the_rest() {
        let (heap, class, stm) = setup();
        let obj = heap.alloc(class).unwrap();
        let ran = Arc::new(AtomicU32::new(0));
        let mut tx = stm.begin();
        let r = ran.clone();
        tx.on_commit(move || {
            r.fetch_add(1, Ordering::Relaxed);
        });
        tx.on_commit(|| panic!("handler boom"));
        let r = ran.clone();
        tx.on_commit(move || {
            r.fetch_add(1, Ordering::Relaxed);
        });
        tx.write(obj, 0, Word::from_scalar(7)).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| tx.commit()));
        let payload = result.expect_err("the first handler panic must resume");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"handler boom"));
        assert_eq!(ran.load(Ordering::Relaxed), 2, "handlers after the panic still ran");
        // The commit itself still published.
        assert_eq!(heap.load(obj, 0).as_scalar(), Some(7));
    }

    #[test]
    fn rollback_to_savepoint_runs_and_truncates_nested_handlers() {
        let (_heap, _class, stm) = setup();
        let order = Arc::new(Mutex::new(Vec::new()));
        let committed = Arc::new(Mutex::new(Vec::new()));
        let mut tx = stm.begin();
        let o = order.clone();
        tx.on_abort(move || o.lock().unwrap().push("outer"));
        let c = committed.clone();
        tx.on_commit(move || c.lock().unwrap().push("outer"));
        let sp = tx.savepoint();
        for name in ["inner-a", "inner-b"] {
            let o = order.clone();
            tx.on_abort(move || o.lock().unwrap().push(name));
            let c = committed.clone();
            tx.on_commit(move || c.lock().unwrap().push(name));
        }
        tx.rollback_to(sp);
        assert_eq!(
            *order.lock().unwrap(),
            vec!["inner-b", "inner-a"],
            "nested abort handlers run in reverse; outer handler survives"
        );
        order.lock().unwrap().clear();
        tx.commit().unwrap();
        assert_eq!(*order.lock().unwrap(), Vec::<&str>::new(), "outer abort handler dropped");
        assert_eq!(
            *committed.lock().unwrap(),
            vec!["outer"],
            "nested commit handlers were truncated with the savepoint"
        );
    }

    #[test]
    fn kill_failpoint_runs_abort_handlers() {
        use crate::failpoint::{sites, FailAction, Trigger};
        let (heap, class, stm) = setup();
        let obj = heap.alloc(class).unwrap();
        let ran = Arc::new(AtomicU32::new(0));
        stm.failpoints().set(sites::COMMIT_BEFORE_RELEASE, FailAction::Kill, Trigger::Once);
        let mut tx = stm.begin();
        let r = ran.clone();
        tx.on_abort(move || {
            r.fetch_add(1, Ordering::Relaxed);
        });
        tx.write(obj, 0, Word::from_scalar(9)).unwrap();
        let err = tx.commit().expect_err("the kill surfaces as DOOMED");
        assert_eq!(err, TxError::DOOMED);
        assert_eq!(
            ran.load(Ordering::Relaxed),
            1,
            "semantic undo runs on the dying thread (it cannot be parked)"
        );
    }
}

// ---------------------------------------------------------------------------
// Abstract-lock table (boosting).
// ---------------------------------------------------------------------------

mod boost_locks {
    use super::*;
    use crate::boost::AbstractLockTable;

    #[test]
    fn locks_are_held_two_phase_and_released_on_commit_and_abort() {
        let (_heap, _class, stm) = setup();
        let table = AbstractLockTable::new(8);
        let mut tx = stm.begin();
        table.acquire(&mut tx, 3).unwrap();
        table.acquire(&mut tx, 3).unwrap(); // reentrant
        assert_eq!(table.holder(3), Some(tx.token()));
        tx.commit().unwrap();
        assert_eq!(table.holder(3), None, "commit handler released the lock");

        let mut tx = stm.begin();
        table.acquire(&mut tx, 5).unwrap();
        assert_eq!(table.holder(5), Some(tx.token()));
        tx.abort();
        assert_eq!(table.holder(5), None, "abort handler released the lock");

        let stats = table.stats();
        assert_eq!(stats.acquires, 2);
        assert_eq!(stats.reentrant_hits, 1);
        assert_eq!(stats.releases, 2);
    }

    #[test]
    fn contended_lock_fails_busy_under_abort_self_policy() {
        let (_heap, _class, stm) =
            setup_with(StmConfig { cm: CmPolicy::AbortSelf, ..StmConfig::default() });
        let table = AbstractLockTable::new(8);
        let mut holder = stm.begin();
        table.acquire(&mut holder, 1).unwrap();
        let mut contender = stm.begin();
        assert_eq!(table.acquire(&mut contender, 1), Err(TxError::BUSY));
        // Distinct keys never contend.
        table.acquire(&mut contender, 2).unwrap();
        holder.abort();
        // The lock is free again; the contender can take it now.
        table.acquire(&mut contender, 1).unwrap();
        contender.commit().unwrap();
        assert_eq!(table.holder(1), None);
        assert_eq!(table.holder(2), None);
        assert!(table.stats().busy_failures >= 1);
    }

    #[test]
    fn bounded_wait_converts_deadlock_into_busy() {
        // Spin policy waits; the budget must still bound the wait so a
        // cross-acquisition cycle (A holds 1 wants 2, B holds 2 wants
        // 1) resolves by one side failing BUSY instead of both
        // spinning forever.
        let (_heap, _class, stm) = setup_with(StmConfig {
            cm: CmPolicy::Spin { max_spins: u32::MAX },
            doom_wait_spins: 32,
            ..StmConfig::default()
        });
        let table = AbstractLockTable::new(8);
        let mut a = stm.begin();
        let mut b = stm.begin();
        table.acquire(&mut a, 1).unwrap();
        table.acquire(&mut b, 2).unwrap();
        assert_eq!(table.acquire(&mut a, 2), Err(TxError::BUSY));
        // A's retry loop would now roll back, releasing lock 1; B can
        // then complete.
        a.abort();
        table.acquire(&mut b, 1).unwrap();
        b.commit().unwrap();
        assert_eq!(table.holder(1), None);
        assert_eq!(table.holder(2), None);
    }

    #[test]
    fn savepoint_rollback_releases_only_nested_locks() {
        let (_heap, _class, stm) = setup();
        let table = AbstractLockTable::new(8);
        let mut tx = stm.begin();
        table.acquire(&mut tx, 1).unwrap();
        let sp = tx.savepoint();
        table.acquire(&mut tx, 2).unwrap();
        tx.rollback_to(sp);
        assert_eq!(table.holder(2), None, "nested acquisition rolled back");
        assert_eq!(table.holder(1), Some(tx.token()), "outer lock survives");
        // Reentrancy after the partial rollback re-registers a release
        // for the rolled-away slot.
        table.acquire(&mut tx, 2).unwrap();
        tx.commit().unwrap();
        assert_eq!(table.holder(1), None);
        assert_eq!(table.holder(2), None);
    }
}
