//! The managed object heap.
//!
//! A [`Heap`] owns a chunked table of object slots. Each object carries a
//! single *header word* — the STM word of the PLDI 2006 design — plus its
//! class id and tagged field words. The table grows by whole chunks that
//! are published with atomic pointers, so allocation in one thread never
//! invalidates references held by another.
//!
//! # Memory reclamation model
//!
//! The collector (see [`Heap::collect`]) is stop-the-world mark-sweep, as
//! in the Bartok runtime the paper's STM was built into. Swept objects
//! are *recycled*, not deallocated: their slot generation is bumped and
//! the storage is reused for the next allocation of the same size class.
//! Object storage is only returned to the operating system when the heap
//! itself is dropped. This keeps all non-GC operations safe for
//! concurrent use (a stale [`ObjRef`] is detected by its generation and
//! reported as a panic rather than undefined behaviour).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, Ordering};

use omt_util::sync::Mutex;

use crate::class::{ClassDesc, ClassId, ClassRegistry};
use crate::stats::HeapStats;
use crate::word::{ObjRef, Word};

pub(crate) const CHUNK_BITS: u32 = 16;
pub(crate) const CHUNK_SIZE: usize = 1 << CHUNK_BITS;
pub(crate) const MAX_CHUNKS: usize = 255;

/// Largest number of simultaneously-allocated objects a heap supports.
pub const MAX_OBJECTS: usize = MAX_CHUNKS * CHUNK_SIZE;

/// Error returned when the heap's slot table is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapFullError;

impl fmt::Display for HeapFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "heap slot table exhausted ({MAX_OBJECTS} objects)")
    }
}

impl std::error::Error for HeapFullError {}

/// One heap object. Stable address for the lifetime of the heap.
pub(crate) struct Object {
    /// The STM word: version number or ownership pointer (see `omt-stm`).
    /// `0` encodes "version 0, quiescent".
    header: AtomicU64,
    class: AtomicU32,
    generation: AtomicU8,
    live: AtomicBool,
    marked: AtomicBool,
    fields: Box<[AtomicU64]>,
}

impl Object {
    fn new(class: ClassId, field_count: usize) -> Object {
        let fields = (0..field_count).map(|_| AtomicU64::new(0)).collect();
        Object {
            header: AtomicU64::new(0),
            class: AtomicU32::new(class.0),
            generation: AtomicU8::new(0),
            live: AtomicBool::new(true),
            marked: AtomicBool::new(false),
            fields,
        }
    }

    fn reset_for_reuse(&self, class: ClassId) {
        self.header.store(0, Ordering::Relaxed);
        self.class.store(class.0, Ordering::Relaxed);
        for f in self.fields.iter() {
            f.store(0, Ordering::Relaxed);
        }
        self.marked.store(false, Ordering::Relaxed);
        self.live.store(true, Ordering::Release);
    }
}

/// One chunk of the slot table; entries are published exactly once.
type Chunk = [AtomicPtr<Object>; CHUNK_SIZE];

fn new_chunk() -> *mut Chunk {
    // Allocate the chunk zeroed instead of building it entry by entry:
    // a fresh heap's first allocation pays for the whole chunk, and a
    // 64Ki-element constructor loop dominates scenario setup when a
    // schedule explorer creates a heap per schedule. The all-zero bit
    // pattern is exactly the initial state (every entry a null
    // `AtomicPtr`, which is `repr(transparent)` over `*mut`).
    let layout = std::alloc::Layout::new::<Chunk>();
    // SAFETY: `Chunk` is a non-zero-sized array of `AtomicPtr`, valid
    // when zeroed; the pointer is released in `Drop` via
    // `Box::from_raw`, which pairs with the global allocator used here.
    unsafe {
        let chunk = std::alloc::alloc_zeroed(layout) as *mut Chunk;
        if chunk.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        chunk
    }
}

struct AllocState {
    /// Next never-used slot index.
    next_fresh: u32,
    /// Recycled slots, keyed by field count (objects are reused only for
    /// instances of the same size).
    free: HashMap<usize, Vec<u32>>,
    /// Number of chunks created so far.
    chunk_count: usize,
}

/// The managed heap. See the [crate documentation](crate) for the
/// memory model.
///
/// # Examples
///
/// ```
/// use omt_heap::{Heap, ClassDesc, Word};
///
/// let heap = Heap::new();
/// let point = heap.define_class(ClassDesc::with_var_fields("Point", &["x", "y"]));
/// let p = heap.alloc(point)?;
/// heap.store(p, 0, Word::from_scalar(3));
/// assert_eq!(heap.load(p, 0).as_scalar(), Some(3));
/// # Ok::<(), omt_heap::HeapFullError>(())
/// ```
pub struct Heap {
    /// Published chunk pointers; index `i` is non-null once chunk `i`
    /// exists. Chunks are freed only on drop.
    chunk_table: Box<[AtomicPtr<Chunk>]>,
    alloc_state: Mutex<AllocState>,
    classes: ClassRegistry,
    stats: HeapStats,
}

// SAFETY: all shared mutation goes through atomics; the raw pointers in
// the chunk table refer to storage that lives until the heap is dropped.
unsafe impl Send for Heap {}
unsafe impl Sync for Heap {}

impl Default for Heap {
    fn default() -> Heap {
        Heap::new()
    }
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Heap {
        let chunk_table = (0..MAX_CHUNKS).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect();
        Heap {
            chunk_table,
            alloc_state: Mutex::new(AllocState {
                next_fresh: 0,
                free: HashMap::new(),
                chunk_count: 0,
            }),
            classes: ClassRegistry::new(),
            stats: HeapStats::new(),
        }
    }

    /// The heap's class registry.
    pub fn classes(&self) -> &ClassRegistry {
        &self.classes
    }

    /// Registers a class (see [`ClassRegistry::define`]).
    pub fn define_class(&self, desc: ClassDesc) -> ClassId {
        self.classes.define(desc)
    }

    /// Allocation, GC, and reuse counters.
    pub fn stats(&self) -> &HeapStats {
        &self.stats
    }

    /// Allocates a zero-initialized instance of `class`.
    ///
    /// All fields start as scalar `0` and the header word starts at
    /// version 0.
    ///
    /// # Errors
    ///
    /// Returns [`HeapFullError`] if the slot table is exhausted.
    pub fn alloc(&self, class: ClassId) -> Result<ObjRef, HeapFullError> {
        let field_count = self.classes.get(class).field_count();
        let mut state = self.alloc_state.lock();

        if let Some(slot) = state.free.get_mut(&field_count).and_then(Vec::pop) {
            drop(state);
            let obj = self.object(slot);
            obj.reset_for_reuse(class);
            let generation = obj.generation.load(Ordering::Relaxed);
            self.stats.record_reuse();
            return Ok(ObjRef::from_parts(slot, generation));
        }

        let slot = state.next_fresh;
        if slot as usize >= MAX_OBJECTS {
            return Err(HeapFullError);
        }
        state.next_fresh += 1;

        let chunk_index = (slot >> CHUNK_BITS) as usize;
        if chunk_index == state.chunk_count {
            self.chunk_table[chunk_index].store(new_chunk(), Ordering::Release);
            state.chunk_count += 1;
        }

        let obj = Box::into_raw(Box::new(Object::new(class, field_count)));
        let chunk = self.chunk_table[chunk_index].load(Ordering::Relaxed);
        // SAFETY: the chunk was just ensured non-null and chunks are never
        // freed before the heap drops.
        unsafe {
            (*chunk)[(slot & (CHUNK_SIZE as u32 - 1)) as usize].store(obj, Ordering::Release);
        }
        drop(state);
        self.stats.record_alloc();
        Ok(ObjRef::from_parts(slot, 0))
    }

    /// Resolves a slot index to its object.
    ///
    /// # Panics
    ///
    /// Panics if the slot was never allocated.
    pub(crate) fn object(&self, slot: u32) -> &Object {
        let chunk_index = (slot >> CHUNK_BITS) as usize;
        let chunk = self.chunk_table[chunk_index].load(Ordering::Acquire);
        assert!(!chunk.is_null(), "object slot {slot} beyond allocated chunks");
        // SAFETY: chunks are immortal until the heap drops.
        let obj =
            unsafe { (*chunk)[(slot & (CHUNK_SIZE as u32 - 1)) as usize].load(Ordering::Acquire) };
        assert!(!obj.is_null(), "object slot {slot} never allocated");
        // SAFETY: object boxes are immortal until the heap drops.
        unsafe { &*obj }
    }

    fn try_object(&self, slot: u32) -> Option<&Object> {
        let chunk_index = (slot >> CHUNK_BITS) as usize;
        let chunk = self.chunk_table[chunk_index].load(Ordering::Acquire);
        if chunk.is_null() {
            return None;
        }
        // SAFETY: as in `object`.
        let obj =
            unsafe { (*chunk)[(slot & (CHUNK_SIZE as u32 - 1)) as usize].load(Ordering::Acquire) };
        if obj.is_null() {
            return None;
        }
        // SAFETY: object boxes are immortal until the heap drops.
        Some(unsafe { &*obj })
    }

    /// Resolves a reference, panicking if it is stale.
    fn resolve(&self, r: ObjRef) -> &Object {
        let obj = self.object(r.slot());
        let generation = obj.generation.load(Ordering::Relaxed);
        assert!(
            generation == r.generation() && obj.live.load(Ordering::Acquire),
            "dangling {r:?}: object was collected (current generation {generation})"
        );
        obj
    }

    /// True if `r` still refers to a live (uncollected) object.
    pub fn is_valid(&self, r: ObjRef) -> bool {
        match self.try_object(r.slot()) {
            Some(obj) => {
                obj.generation.load(Ordering::Relaxed) == r.generation()
                    && obj.live.load(Ordering::Acquire)
            }
            None => false,
        }
    }

    /// The class of the object `r` refers to.
    ///
    /// # Panics
    ///
    /// Panics if `r` is stale.
    pub fn class_of(&self, r: ObjRef) -> ClassId {
        ClassId(self.resolve(r).class.load(Ordering::Relaxed))
    }

    /// Number of fields of the object `r` refers to.
    pub fn field_count(&self, r: ObjRef) -> usize {
        self.resolve(r).fields.len()
    }

    /// Loads field `field` of `r` (relaxed; transactional consistency is
    /// the STM's job).
    ///
    /// # Panics
    ///
    /// Panics if `r` is stale or `field` is out of bounds.
    pub fn load(&self, r: ObjRef, field: usize) -> Word {
        Word::from_bits(self.resolve(r).fields[field].load(Ordering::Relaxed))
    }

    /// Stores `value` into field `field` of `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is stale or `field` is out of bounds.
    pub fn store(&self, r: ObjRef, field: usize, value: Word) {
        self.resolve(r).fields[field].store(value.to_bits(), Ordering::Relaxed);
    }

    /// Direct access to a field's atomic cell, for synchronization
    /// backends that need compare-and-swap or custom orderings.
    ///
    /// # Panics
    ///
    /// Panics if `r` is stale or `field` is out of bounds.
    pub fn field_atomic(&self, r: ObjRef, field: usize) -> &AtomicU64 {
        &self.resolve(r).fields[field]
    }

    /// Direct access to the object's header (STM) word.
    ///
    /// The header encodes either a version number or transactional
    /// ownership; the encoding lives in `omt-stm`. A freshly allocated
    /// object has header `0`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is stale.
    pub fn header_atomic(&self, r: ObjRef) -> &AtomicU64 {
        &self.resolve(r).header
    }

    /// Calls `f` for every live object.
    ///
    /// Intended for stop-the-world maintenance passes (version
    /// renumbering, heap audits); concurrent allocation during iteration
    /// may or may not be visited.
    pub fn for_each_live(&self, mut f: impl FnMut(ObjRef)) {
        let next_fresh = self.alloc_state.lock().next_fresh;
        for slot in 0..next_fresh {
            if let Some(obj) = self.try_object(slot) {
                if obj.live.load(Ordering::Acquire) {
                    let generation = obj.generation.load(Ordering::Relaxed);
                    f(ObjRef::from_parts(slot, generation));
                }
            }
        }
    }

    /// Number of live objects.
    pub fn live_objects(&self) -> usize {
        let state = self.alloc_state.lock();
        let freed: usize = state.free.values().map(Vec::len).sum();
        state.next_fresh as usize - freed
    }

    pub(crate) fn with_alloc_state<R>(&self, f: impl FnOnce(&mut AllocStateView<'_>) -> R) -> R {
        let mut state = self.alloc_state.lock();
        let mut view = AllocStateView { state: &mut state };
        f(&mut view)
    }

    pub(crate) fn mark_bit(&self, slot: u32) -> &AtomicBool {
        &self.object(slot).marked
    }

    pub(crate) fn slot_live(&self, slot: u32) -> bool {
        self.try_object(slot).is_some_and(|o| o.live.load(Ordering::Acquire))
    }

    pub(crate) fn object_fields(&self, slot: u32) -> &[AtomicU64] {
        &self.object(slot).fields
    }

    pub(crate) fn retire(&self, slot: u32) {
        let obj = self.object(slot);
        obj.live.store(false, Ordering::Release);
        obj.generation.fetch_add(1, Ordering::Relaxed);
    }
}

/// Restricted view of the allocator state used by the collector.
pub(crate) struct AllocStateView<'a> {
    state: &'a mut AllocState,
}

impl AllocStateView<'_> {
    pub(crate) fn next_fresh(&self) -> u32 {
        self.state.next_fresh
    }

    pub(crate) fn push_free(&mut self, field_count: usize, slot: u32) {
        self.state.free.entry(field_count).or_default().push(slot);
    }
}

impl Drop for Heap {
    fn drop(&mut self) {
        let state = self.alloc_state.get_mut();
        let used = state.next_fresh as usize;
        for chunk_index in 0..state.chunk_count {
            let chunk = *self.chunk_table[chunk_index].get_mut();
            if chunk.is_null() {
                continue;
            }
            // Object pointers only ever live below `next_fresh`;
            // scanning the full 64Ki-entry chunk is measurable when an
            // explorer drops one heap per explored schedule.
            let in_chunk = used.saturating_sub(chunk_index << CHUNK_BITS).min(CHUNK_SIZE);
            // SAFETY: we have exclusive access; each chunk and each
            // published object pointer came from the global allocator
            // and is dropped exactly once, here.
            unsafe {
                for entry in (&*chunk)[..in_chunk].iter() {
                    let obj = entry.load(Ordering::Relaxed);
                    if !obj.is_null() {
                        drop(Box::from_raw(obj));
                    }
                }
                drop(Box::from_raw(chunk));
            }
        }
    }
}

impl fmt::Debug for Heap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Heap")
            .field("live_objects", &self.live_objects())
            .field("classes", &self.classes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point_heap() -> (Heap, ClassId) {
        let heap = Heap::new();
        let class = heap.define_class(ClassDesc::with_var_fields("Point", &["x", "y"]));
        (heap, class)
    }

    #[test]
    fn alloc_zero_initializes() {
        let (heap, class) = point_heap();
        let r = heap.alloc(class).unwrap();
        assert_eq!(heap.load(r, 0).as_scalar(), Some(0));
        assert_eq!(heap.load(r, 1).as_scalar(), Some(0));
        assert_eq!(heap.class_of(r), class);
        assert_eq!(heap.field_count(r), 2);
        assert_eq!(heap.header_atomic(r).load(Ordering::Relaxed), 0);
    }

    #[test]
    fn store_load_round_trip() {
        let (heap, class) = point_heap();
        let a = heap.alloc(class).unwrap();
        let b = heap.alloc(class).unwrap();
        heap.store(a, 0, Word::from_scalar(7));
        heap.store(a, 1, Word::from_ref(b));
        assert_eq!(heap.load(a, 0).as_scalar(), Some(7));
        assert_eq!(heap.load(a, 1).as_ref(), Some(b));
        assert_eq!(heap.load(b, 0).as_scalar(), Some(0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn field_out_of_bounds_panics() {
        let (heap, class) = point_heap();
        let r = heap.alloc(class).unwrap();
        let _ = heap.load(r, 2);
    }

    #[test]
    fn many_allocations_cross_chunks() {
        let heap = Heap::new();
        let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["v"]));
        let mut refs = Vec::new();
        for i in 0..(CHUNK_SIZE + 10) {
            let r = heap.alloc(class).unwrap();
            heap.store(r, 0, Word::from_scalar(i as i64));
            refs.push(r);
        }
        for (i, r) in refs.iter().enumerate() {
            assert_eq!(heap.load(*r, 0).as_scalar(), Some(i as i64));
        }
        assert_eq!(heap.live_objects(), CHUNK_SIZE + 10);
    }

    #[test]
    fn concurrent_allocation_is_race_free() {
        let heap = std::sync::Arc::new(Heap::new());
        let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["v"]));
        let mut handles = Vec::new();
        for t in 0..8 {
            let heap = heap.clone();
            handles.push(std::thread::spawn(move || {
                let mut refs = Vec::new();
                for i in 0..2000 {
                    let r = heap.alloc(class).unwrap();
                    heap.store(r, 0, Word::from_scalar(t * 1_000_000 + i));
                    refs.push((r, t * 1_000_000 + i));
                }
                for (r, v) in refs {
                    assert_eq!(heap.load(r, 0).as_scalar(), Some(v));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(heap.live_objects(), 8 * 2000);
    }

    #[test]
    fn for_each_live_visits_exactly_live_objects() {
        let (heap, class) = point_heap();
        let a = heap.alloc(class).unwrap();
        let b = heap.alloc(class).unwrap();
        let mut seen = Vec::new();
        heap.for_each_live(|r| seen.push(r));
        assert_eq!(seen, vec![a, b]);
        // After collecting `b`, only `a` is visited.
        heap.collect(&crate::RootSet::from(vec![a]), &[]);
        let mut seen = Vec::new();
        heap.for_each_live(|r| seen.push(r));
        assert_eq!(seen, vec![a]);
    }

    #[test]
    fn is_valid_detects_fresh_and_bogus_refs() {
        let (heap, class) = point_heap();
        let r = heap.alloc(class).unwrap();
        assert!(heap.is_valid(r));
        let bogus = ObjRef::from_parts(999, 0);
        assert!(!heap.is_valid(bogus));
    }
}
