//! # omt-heap — managed object heap substrate
//!
//! The PLDI 2006 paper *"Optimizing memory transactions"* builds its STM
//! into the Bartok C# compiler and managed runtime: objects carry a
//! header word of STM metadata, fields are updated in place, and the
//! garbage collector understands transaction logs. Rust has no managed
//! heap, so this crate provides one — the substrate the rest of the
//! reproduction stands on:
//!
//! - [`Word`]: tagged 64-bit values (63-bit scalars or [`ObjRef`]s) so
//!   the collector can trace without per-class layout maps;
//! - [`ClassDesc`] / [`ClassRegistry`]: object shapes, with per-field
//!   `var`/`val` mutability (immutability licenses barrier elision);
//! - [`Heap`]: a chunked, concurrently usable object table where every
//!   object has a header atomic (the STM word) and field atomics;
//! - [`Heap::collect`]: stop-the-world mark-sweep with [`GcParticipant`]
//!   hooks so the STM can contribute roots and have its logs trimmed,
//!   reproducing the paper's GC integration.
//!
//! # Examples
//!
//! ```
//! use omt_heap::{Heap, ClassDesc, RootSet, Word};
//!
//! let heap = Heap::new();
//! let node = heap.define_class(ClassDesc::with_var_fields("Node", &["key", "next"]));
//!
//! // Build a two-element list, drop the tail, and collect.
//! let head = heap.alloc(node)?;
//! let tail = heap.alloc(node)?;
//! heap.store(head, 1, Word::from_ref(tail));
//! heap.store(head, 1, Word::null());
//! let outcome = heap.collect(&RootSet::from(vec![head]), &[]);
//! assert_eq!(outcome.swept, 1);
//! # Ok::<(), omt_heap::HeapFullError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod class;
mod gc;
mod heap;
mod stats;
mod word;

pub use class::{ClassDesc, ClassId, ClassRegistry, FieldDesc, FieldMut};
pub use gc::{GcOutcome, GcParticipant, RootSet};
pub use heap::{Heap, HeapFullError, MAX_OBJECTS};
pub use stats::{HeapStats, HeapStatsSnapshot};
pub use word::{ObjRef, Word, SCALAR_BITS, SCALAR_MAX, SCALAR_MIN};
