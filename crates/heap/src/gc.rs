//! Stop-the-world mark-sweep collection with STM log integration.
//!
//! The PLDI 2006 STM is integrated with the Bartok garbage collector:
//! transaction logs are known to the GC, which (a) treats values needed
//! for rollback as roots, and (b) *trims* read-log and update-log entries
//! whose objects died, shrinking the logs of long-running transactions.
//!
//! That integration is expressed here by the [`GcParticipant`] trait: the
//! STM registers the objects its undo logs can restore as roots in
//! [`GcParticipant::trace_roots`], and prunes dead entries in
//! [`GcParticipant::after_sweep`].
//!
//! # Stop-the-world contract
//!
//! [`Heap::collect`] must only run while every mutator thread is paused
//! at a safepoint and has reported its live references through `roots`
//! or a participant. Violating this cannot cause undefined behaviour
//! (storage is recycled, never freed — see the [`crate::heap`] module
//! docs), but it can collect objects a running thread still uses, which
//! surfaces as a "dangling ObjRef" panic.

use std::fmt;

use crate::heap::Heap;
use crate::word::{ObjRef, Word};

/// A component that owns references the collector must know about.
///
/// Implemented by the STM's transaction registry (logs), by VM thread
/// states (registers), and by workloads with global structures.
pub trait GcParticipant: Sync {
    /// Report every reference that must keep its target alive.
    fn trace_roots(&self, mark: &mut dyn FnMut(ObjRef));

    /// Called after the sweep with a liveness predicate; implementations
    /// drop bookkeeping entries whose objects died (the paper's log
    /// trimming).
    fn after_sweep(&self, is_live: &dyn Fn(ObjRef) -> bool);
}

/// A plain list of root references.
///
/// # Examples
///
/// ```
/// use omt_heap::{Heap, ClassDesc, RootSet};
///
/// let heap = Heap::new();
/// let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["v"]));
/// let keep = heap.alloc(class)?;
/// let lose = heap.alloc(class)?;
/// let stats = heap.collect(&RootSet::from(vec![keep]), &[]);
/// assert_eq!(stats.swept, 1);
/// assert!(heap.is_valid(keep));
/// assert!(!heap.is_valid(lose));
/// # Ok::<(), omt_heap::HeapFullError>(())
/// ```
#[derive(Debug, Default, Clone)]
pub struct RootSet {
    roots: Vec<ObjRef>,
}

impl RootSet {
    /// Creates an empty root set.
    pub fn new() -> RootSet {
        RootSet::default()
    }

    /// Adds a root.
    pub fn push(&mut self, r: ObjRef) {
        self.roots.push(r);
    }

    /// Adds an optional root (nulls are ignored).
    pub fn push_word(&mut self, w: Word) {
        if let Some(r) = w.as_ref() {
            self.roots.push(r);
        }
    }

    /// The roots collected so far.
    pub fn iter(&self) -> impl Iterator<Item = ObjRef> + '_ {
        self.roots.iter().copied()
    }

    /// Number of roots.
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    /// True if there are no roots.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }
}

impl From<Vec<ObjRef>> for RootSet {
    fn from(roots: Vec<ObjRef>) -> RootSet {
        RootSet { roots }
    }
}

impl Extend<ObjRef> for RootSet {
    fn extend<T: IntoIterator<Item = ObjRef>>(&mut self, iter: T) {
        self.roots.extend(iter);
    }
}

/// Outcome of one collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcOutcome {
    /// Objects found reachable.
    pub marked: u64,
    /// Objects reclaimed (recycled).
    pub swept: u64,
    /// Live objects before the collection.
    pub live_before: u64,
}

impl fmt::Display for GcOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gc: {} live before, {} marked, {} swept",
            self.live_before, self.marked, self.swept
        )
    }
}

impl Heap {
    /// Runs a stop-the-world mark-sweep collection.
    ///
    /// `roots` are the caller's live references (thread stacks, global
    /// structures); `participants` contribute further roots and have
    /// their bookkeeping trimmed after the sweep (the STM registry).
    ///
    /// # Stop-the-world contract
    ///
    /// Call only while every mutator thread is paused at a safepoint and
    /// all live references are reported via `roots` or a participant;
    /// violations surface as "dangling ObjRef" panics, never undefined
    /// behaviour.
    ///
    /// Under a schedule explorer, a participant's `after_sweep` may
    /// yield between shards of its own bookkeeping; mutator steps
    /// interleaved there are safe (logs are trimmed before storage is
    /// reclaimed — see below) as long as they do not *allocate*: the
    /// sweep would treat an unmarked fresh object as garbage. Marking
    /// takes no such pauses — without write barriers a mutator store
    /// interleaved mid-mark could hide a live object from the trace.
    pub fn collect(&self, roots: &RootSet, participants: &[&dyn GcParticipant]) -> GcOutcome {
        let live_before = self.live_objects() as u64;
        let mut worklist: Vec<u32> = Vec::new();
        let mut marked: u64 = 0;

        {
            let mut mark = |r: ObjRef| {
                if !self.is_valid(r) {
                    return;
                }
                let slot = r.slot();
                let bit = self.mark_bit(slot);
                if !bit.swap(true, std::sync::atomic::Ordering::Relaxed) {
                    worklist.push(slot);
                }
            };
            for r in roots.iter() {
                mark(r);
            }
            for p in participants {
                p.trace_roots(&mut mark);
            }
        }

        while let Some(slot) = worklist.pop() {
            marked += 1;
            let fields = self.object_fields(slot);
            for field in fields {
                let word = Word::from_bits(field.load(std::sync::atomic::Ordering::Relaxed));
                let Some(r) = word.as_ref() else { continue };
                if !self.is_valid(r) {
                    continue;
                }
                let child = r.slot();
                let bit = self.mark_bit(child);
                if !bit.swap(true, std::sync::atomic::Ordering::Relaxed) {
                    worklist.push(child);
                }
            }
        }

        // Trim participant bookkeeping *before* storage is reclaimed.
        // A participant may pause mid-trim under a schedule explorer
        // (see the registry's shard-boundary yields); a mutator step
        // interleaved there can still validate a not-yet-trimmed entry
        // against an intact — merely condemned — object. Freeing first
        // would put a dangling slot behind that entry.
        let is_live = |r: ObjRef| {
            self.is_valid(r) && self.mark_bit(r.slot()).load(std::sync::atomic::Ordering::Relaxed)
        };
        for p in participants {
            p.after_sweep(&is_live);
        }

        let mut swept: u64 = 0;
        self.with_alloc_state(|state| {
            for slot in 0..state.next_fresh() {
                if !self.slot_live(slot) {
                    continue;
                }
                let bit = self.mark_bit(slot);
                if bit.swap(false, std::sync::atomic::Ordering::Relaxed) {
                    continue; // survivor; mark bit cleared for next cycle
                }
                let field_count = self.object_fields(slot).len();
                self.retire(slot);
                state.push_free(field_count, slot);
                swept += 1;
            }
        });

        self.stats().record_collection(swept);
        GcOutcome { marked, swept, live_before }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassDesc;
    use crate::word::Word;

    fn cell_heap() -> (Heap, crate::class::ClassId) {
        let heap = Heap::new();
        let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["v", "next"]));
        (heap, class)
    }

    #[test]
    fn unreachable_objects_are_swept() {
        let (heap, class) = cell_heap();
        let a = heap.alloc(class).unwrap();
        let _b = heap.alloc(class).unwrap();
        let outcome = heap.collect(&RootSet::from(vec![a]), &[]);
        assert_eq!(outcome.live_before, 2);
        assert_eq!(outcome.marked, 1);
        assert_eq!(outcome.swept, 1);
        assert_eq!(heap.live_objects(), 1);
    }

    #[test]
    fn reachability_is_transitive() {
        let (heap, class) = cell_heap();
        let a = heap.alloc(class).unwrap();
        let b = heap.alloc(class).unwrap();
        let c = heap.alloc(class).unwrap();
        let dead = heap.alloc(class).unwrap();
        heap.store(a, 1, Word::from_ref(b));
        heap.store(b, 1, Word::from_ref(c));
        let outcome = heap.collect(&RootSet::from(vec![a]), &[]);
        assert_eq!(outcome.marked, 3);
        assert_eq!(outcome.swept, 1);
        assert!(heap.is_valid(c));
        assert!(!heap.is_valid(dead));
    }

    #[test]
    fn cycles_are_collected_when_unreachable() {
        let (heap, class) = cell_heap();
        let a = heap.alloc(class).unwrap();
        let b = heap.alloc(class).unwrap();
        heap.store(a, 1, Word::from_ref(b));
        heap.store(b, 1, Word::from_ref(a));
        let outcome = heap.collect(&RootSet::new(), &[]);
        assert_eq!(outcome.swept, 2);
    }

    #[test]
    fn swept_slots_are_recycled_with_new_generation() {
        let (heap, class) = cell_heap();
        let dead = heap.alloc(class).unwrap();
        heap.collect(&RootSet::new(), &[]);
        let fresh = heap.alloc(class).unwrap();
        // Same slot, different generation.
        assert_ne!(dead, fresh);
        assert!(!heap.is_valid(dead));
        assert!(heap.is_valid(fresh));
        assert_eq!(heap.load(fresh, 0).as_scalar(), Some(0));
        assert_eq!(heap.stats().snapshot().reuses, 1);
    }

    #[test]
    #[should_panic(expected = "dangling")]
    fn stale_reference_access_panics() {
        let (heap, class) = cell_heap();
        let dead = heap.alloc(class).unwrap();
        heap.collect(&RootSet::new(), &[]);
        heap.alloc(class).unwrap(); // recycles the slot
        let _ = heap.load(dead, 0);
    }

    #[test]
    fn participants_contribute_roots_and_get_trimmed() {
        struct LogLike {
            held: std::sync::Mutex<Vec<ObjRef>>,
        }
        impl GcParticipant for LogLike {
            fn trace_roots(&self, mark: &mut dyn FnMut(ObjRef)) {
                // Hold the first entry strongly, like an undo-log root.
                if let Some(first) = self.held.lock().unwrap().first() {
                    mark(*first);
                }
            }
            fn after_sweep(&self, is_live: &dyn Fn(ObjRef) -> bool) {
                self.held.lock().unwrap().retain(|r| is_live(*r));
            }
        }

        let (heap, class) = cell_heap();
        let strong = heap.alloc(class).unwrap();
        let weak = heap.alloc(class).unwrap();
        let log = LogLike { held: std::sync::Mutex::new(vec![strong, weak]) };
        let outcome = heap.collect(&RootSet::new(), &[&log]);
        assert_eq!(outcome.swept, 1);
        let held = log.held.lock().unwrap();
        assert_eq!(held.as_slice(), &[strong], "dead entry trimmed from the log");
    }

    #[test]
    fn repeated_collections_are_stable() {
        let (heap, class) = cell_heap();
        let root = heap.alloc(class).unwrap();
        for i in 0..100 {
            let tmp = heap.alloc(class).unwrap();
            heap.store(tmp, 0, Word::from_scalar(i));
        }
        let first = heap.collect(&RootSet::from(vec![root]), &[]);
        assert_eq!(first.swept, 100);
        let second = heap.collect(&RootSet::from(vec![root]), &[]);
        assert_eq!(second.swept, 0);
        assert_eq!(second.marked, 1);
        assert_eq!(heap.live_objects(), 1);
    }
}
