//! Heap counters: allocation, reuse, and collection activity.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters owned by a [`crate::Heap`].
///
/// All counters are monotonically increasing and updated with relaxed
/// atomics; read them through [`HeapStats::snapshot`].
#[derive(Debug, Default)]
pub struct HeapStats {
    allocs: AtomicU64,
    reuses: AtomicU64,
    collections: AtomicU64,
    swept_total: AtomicU64,
}

impl HeapStats {
    pub(crate) fn new() -> HeapStats {
        HeapStats::default()
    }

    pub(crate) fn record_alloc(&self) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_reuse(&self) {
        self.reuses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_collection(&self, swept: u64) {
        self.collections.fetch_add(1, Ordering::Relaxed);
        self.swept_total.fetch_add(swept, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot of the counters.
    pub fn snapshot(&self) -> HeapStatsSnapshot {
        HeapStatsSnapshot {
            fresh_allocs: self.allocs.load(Ordering::Relaxed),
            reuses: self.reuses.load(Ordering::Relaxed),
            collections: self.collections.load(Ordering::Relaxed),
            swept_total: self.swept_total.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`HeapStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapStatsSnapshot {
    /// Objects allocated in fresh slots.
    pub fresh_allocs: u64,
    /// Objects allocated by recycling a swept slot.
    pub reuses: u64,
    /// Number of collections run.
    pub collections: u64,
    /// Objects swept across all collections.
    pub swept_total: u64,
}

impl HeapStatsSnapshot {
    /// Total allocations (fresh plus recycled).
    pub fn total_allocs(&self) -> u64 {
        self.fresh_allocs + self.reuses
    }
}

impl fmt::Display for HeapStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "allocs={} (fresh={}, reused={}), collections={}, swept={}",
            self.total_allocs(),
            self.fresh_allocs,
            self.reuses,
            self.collections,
            self.swept_total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = HeapStats::new();
        stats.record_alloc();
        stats.record_alloc();
        stats.record_reuse();
        stats.record_collection(5);
        let snap = stats.snapshot();
        assert_eq!(snap.fresh_allocs, 2);
        assert_eq!(snap.reuses, 1);
        assert_eq!(snap.total_allocs(), 3);
        assert_eq!(snap.collections, 1);
        assert_eq!(snap.swept_total, 5);
    }

    #[test]
    fn display_is_never_empty() {
        let snap = HeapStatsSnapshot::default();
        assert!(!snap.to_string().is_empty());
    }
}
