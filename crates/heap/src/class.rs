//! Class descriptors: the shape of heap objects.
//!
//! TxIL classes (and the native workloads' record types) are described by
//! a [`ClassDesc`]: an ordered list of named fields, each either mutable
//! (`var`) or immutable-after-construction (`val`). Immutability is what
//! licenses the PLDI 2006 optimization of eliding STM barriers on reads
//! of `val` fields.

use std::fmt;
use std::sync::Arc;

use omt_util::sync::RwLock;
use std::collections::HashMap;

/// Identifies a class registered with a [`crate::Heap`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub(crate) u32);

impl ClassId {
    /// The raw index of this class in its registry.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClassId({})", self.0)
    }
}

/// Whether a field may be mutated after the constructor finishes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FieldMut {
    /// Mutable field; transactional stores need undo logging.
    Var,
    /// Immutable field; reads never need STM barriers.
    Val,
}

/// One field of a class.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FieldDesc {
    name: String,
    mutability: FieldMut,
}

impl FieldDesc {
    /// Creates a field description.
    pub fn new(name: impl Into<String>, mutability: FieldMut) -> FieldDesc {
        FieldDesc { name: name.into(), mutability }
    }

    /// The field's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The field's mutability.
    pub fn mutability(&self) -> FieldMut {
        self.mutability
    }

    /// True if the field is immutable (`val`).
    pub fn is_immutable(&self) -> bool {
        self.mutability == FieldMut::Val
    }
}

/// The shape of a class: its name and ordered fields.
///
/// # Examples
///
/// ```
/// use omt_heap::{ClassDesc, FieldDesc, FieldMut};
///
/// let desc = ClassDesc::new(
///     "Node",
///     vec![
///         FieldDesc::new("key", FieldMut::Val),
///         FieldDesc::new("next", FieldMut::Var),
///     ],
/// );
/// assert_eq!(desc.field_count(), 2);
/// assert_eq!(desc.field_index("next"), Some(1));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClassDesc {
    name: String,
    fields: Vec<FieldDesc>,
}

impl ClassDesc {
    /// Creates a class description.
    pub fn new(name: impl Into<String>, fields: Vec<FieldDesc>) -> ClassDesc {
        ClassDesc { name: name.into(), fields }
    }

    /// Convenience constructor: every listed field is a mutable `var`.
    pub fn with_var_fields(name: impl Into<String>, fields: &[&str]) -> ClassDesc {
        ClassDesc::new(name, fields.iter().map(|f| FieldDesc::new(*f, FieldMut::Var)).collect())
    }

    /// The class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered fields.
    pub fn fields(&self) -> &[FieldDesc] {
        &self.fields
    }

    /// Number of fields (and heap words) per instance.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Looks a field up by name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name() == name)
    }

    /// Returns the description of field `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn field(&self, index: usize) -> &FieldDesc {
        &self.fields[index]
    }
}

/// A concurrent registry of class descriptors.
///
/// Classes are append-only: once defined, a [`ClassId`] remains valid for
/// the registry's lifetime.
#[derive(Default)]
pub struct ClassRegistry {
    inner: RwLock<RegistryInner>,
}

#[derive(Default)]
struct RegistryInner {
    classes: Vec<Arc<ClassDesc>>,
    by_name: HashMap<String, ClassId>,
}

impl ClassRegistry {
    /// Creates an empty registry.
    pub fn new() -> ClassRegistry {
        ClassRegistry::default()
    }

    /// Registers a class and returns its id.
    ///
    /// Defining a class with a name that already exists returns the
    /// existing id if the shapes match.
    ///
    /// # Panics
    ///
    /// Panics if a class with the same name but a different shape is
    /// already registered.
    pub fn define(&self, desc: ClassDesc) -> ClassId {
        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_name.get(desc.name()) {
            let existing = &inner.classes[id.index()];
            assert!(
                existing.as_ref() == &desc,
                "class {:?} redefined with a different shape",
                desc.name()
            );
            return id;
        }
        let id = ClassId(u32::try_from(inner.classes.len()).expect("too many classes"));
        inner.by_name.insert(desc.name().to_owned(), id);
        inner.classes.push(Arc::new(desc));
        id
    }

    /// Returns the descriptor for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this registry.
    pub fn get(&self, id: ClassId) -> Arc<ClassDesc> {
        self.inner.read().classes[id.index()].clone()
    }

    /// Looks a class up by name.
    pub fn lookup(&self, name: &str) -> Option<ClassId> {
        self.inner.read().by_name.get(name).copied()
    }

    /// Number of registered classes.
    pub fn len(&self) -> usize {
        self.inner.read().classes.len()
    }

    /// True if no classes are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for ClassRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("ClassRegistry").field("classes", &inner.classes.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_and_lookup() {
        let reg = ClassRegistry::new();
        let id = reg.define(ClassDesc::with_var_fields("Point", &["x", "y"]));
        assert_eq!(reg.lookup("Point"), Some(id));
        assert_eq!(reg.lookup("Missing"), None);
        let desc = reg.get(id);
        assert_eq!(desc.name(), "Point");
        assert_eq!(desc.field_count(), 2);
    }

    #[test]
    fn redefining_identical_class_is_idempotent() {
        let reg = ClassRegistry::new();
        let a = reg.define(ClassDesc::with_var_fields("P", &["x"]));
        let b = reg.define(ClassDesc::with_var_fields("P", &["x"]));
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "redefined")]
    fn redefining_with_different_shape_panics() {
        let reg = ClassRegistry::new();
        reg.define(ClassDesc::with_var_fields("P", &["x"]));
        reg.define(ClassDesc::with_var_fields("P", &["x", "y"]));
    }

    #[test]
    fn field_metadata() {
        let desc = ClassDesc::new(
            "Node",
            vec![FieldDesc::new("key", FieldMut::Val), FieldDesc::new("next", FieldMut::Var)],
        );
        assert!(desc.field(0).is_immutable());
        assert!(!desc.field(1).is_immutable());
        assert_eq!(desc.field_index("key"), Some(0));
        assert_eq!(desc.field_index("nope"), None);
    }

    #[test]
    fn registry_is_empty_initially() {
        let reg = ClassRegistry::new();
        assert!(reg.is_empty());
        reg.define(ClassDesc::with_var_fields("A", &[]));
        assert!(!reg.is_empty());
    }
}
