//! Tagged heap words and object references.
//!
//! Every field of a heap object holds a [`Word`]: a 64-bit value whose low
//! bit distinguishes scalars from object references so the garbage
//! collector can trace the heap without per-class layout maps:
//!
//! ```text
//! bit 0 = 0:  [ scalar : 63 ][0]   — a 63-bit signed integer
//! bit 0 = 1:  [ objref : 32 ][..][1] — an object reference (0 = null)
//! ```
//!
//! This mirrors the Bartok runtime's ability to distinguish pointers from
//! non-pointers, which the PLDI 2006 STM's GC integration relies on.

use std::fmt;
use std::num::NonZeroU32;

/// The number of bits available for scalar payloads in a [`Word`].
pub const SCALAR_BITS: u32 = 63;

/// Largest scalar storable in a [`Word`].
pub const SCALAR_MAX: i64 = i64::MAX >> 1;

/// Smallest scalar storable in a [`Word`].
pub const SCALAR_MIN: i64 = i64::MIN >> 1;

/// A reference to a heap object.
///
/// Packs a 24-bit slot index and an 8-bit generation. The generation is
/// bumped every time the slot is recycled by the garbage collector, so a
/// stale reference is detected (with high probability) instead of silently
/// aliasing a new object.
///
/// # Examples
///
/// ```
/// use omt_heap::{Heap, ClassDesc};
///
/// let heap = Heap::new();
/// let class = heap.define_class(ClassDesc::with_var_fields("Pair", &["a", "b"]));
/// let r = heap.alloc(class).unwrap();
/// assert_eq!(r, r.clone());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjRef(NonZeroU32);

impl ObjRef {
    pub(crate) fn from_parts(slot: u32, generation: u8) -> ObjRef {
        debug_assert!(slot < (1 << 24) - 1, "slot index out of range");
        // Bias the slot by one so that slot 0 still yields a non-zero raw
        // representation.
        let raw = ((slot + 1) << 8) | u32::from(generation);
        ObjRef(NonZeroU32::new(raw).expect("biased slot is non-zero"))
    }

    /// The slot index inside the heap's object table.
    pub(crate) fn slot(self) -> u32 {
        (self.0.get() >> 8) - 1
    }

    /// The recycling generation this reference was created under.
    pub(crate) fn generation(self) -> u8 {
        (self.0.get() & 0xff) as u8
    }

    /// Raw bit pattern, used by [`Word`] packing and by the STM word
    /// encoding in `omt-stm`.
    pub fn to_raw(self) -> u32 {
        self.0.get()
    }

    /// Rebuilds a reference from [`ObjRef::to_raw`] output.
    ///
    /// Returns `None` for zero, which encodes null in a [`Word`].
    pub fn from_raw(raw: u32) -> Option<ObjRef> {
        NonZeroU32::new(raw).map(ObjRef)
    }
}

impl fmt::Debug for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjRef({}g{})", self.slot(), self.generation())
    }
}

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.slot())
    }
}

/// A tagged 64-bit heap word: either a 63-bit scalar or an object
/// reference (possibly null).
///
/// # Examples
///
/// ```
/// use omt_heap::Word;
///
/// let w = Word::from_scalar(-42);
/// assert_eq!(w.as_scalar(), Some(-42));
/// assert!(Word::null().is_null());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Word(u64);

impl Word {
    /// The null reference.
    pub const NULL: Word = Word(1);

    /// Returns the null reference word.
    pub fn null() -> Word {
        Word::NULL
    }

    /// Encodes a scalar.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in 63 bits (outside
    /// [`SCALAR_MIN`]..=[`SCALAR_MAX`]).
    pub fn from_scalar(value: i64) -> Word {
        assert!(
            (SCALAR_MIN..=SCALAR_MAX).contains(&value),
            "scalar {value} does not fit in a 63-bit heap word"
        );
        Word((value << 1) as u64)
    }

    /// Encodes a scalar, wrapping values that exceed 63 bits.
    pub fn from_scalar_wrapping(value: i64) -> Word {
        Word((value.wrapping_shl(1)) as u64)
    }

    /// Encodes an object reference.
    pub fn from_ref(r: ObjRef) -> Word {
        Word((u64::from(r.to_raw()) << 1) | 1)
    }

    /// Encodes an optional reference (`None` becomes null).
    pub fn from_opt_ref(r: Option<ObjRef>) -> Word {
        match r {
            Some(r) => Word::from_ref(r),
            None => Word::NULL,
        }
    }

    /// True if this word is a reference (including null).
    pub fn is_ref(self) -> bool {
        self.0 & 1 == 1
    }

    /// True if this word is the null reference.
    pub fn is_null(self) -> bool {
        self.0 == 1
    }

    /// Decodes a scalar, or `None` if this word is a reference.
    pub fn as_scalar(self) -> Option<i64> {
        if self.is_ref() {
            None
        } else {
            Some((self.0 as i64) >> 1)
        }
    }

    /// Decodes a non-null object reference.
    pub fn as_ref(self) -> Option<ObjRef> {
        if self.is_ref() {
            ObjRef::from_raw((self.0 >> 1) as u32)
        } else {
            None
        }
    }

    /// Raw bit pattern, as stored in field atomics.
    pub fn to_bits(self) -> u64 {
        self.0
    }

    /// Rebuilds a word from [`Word::to_bits`] output.
    pub fn from_bits(bits: u64) -> Word {
        Word(bits)
    }
}

impl Default for Word {
    /// The default word is scalar zero.
    fn default() -> Word {
        Word::from_scalar(0)
    }
}

impl From<ObjRef> for Word {
    fn from(r: ObjRef) -> Word {
        Word::from_ref(r)
    }
}

impl fmt::Debug for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "null")
        } else if let Some(r) = self.as_ref() {
            write!(f, "{r:?}")
        } else {
            write!(f, "{}", self.as_scalar().expect("non-ref word is scalar"))
        }
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "null")
        } else if let Some(r) = self.as_ref() {
            write!(f, "{r}")
        } else {
            write!(f, "{}", self.as_scalar().expect("non-ref word is scalar"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        for v in [0, 1, -1, 42, -42, SCALAR_MAX, SCALAR_MIN] {
            let w = Word::from_scalar(v);
            assert_eq!(w.as_scalar(), Some(v), "value {v}");
            assert!(!w.is_ref());
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn scalar_overflow_panics() {
        let _ = Word::from_scalar(SCALAR_MAX + 1);
    }

    #[test]
    fn wrapping_scalar_masks_high_bit() {
        let w = Word::from_scalar_wrapping(i64::MAX);
        assert_eq!(w.as_scalar(), Some(-1));
    }

    #[test]
    fn ref_round_trip() {
        let r = ObjRef::from_parts(12345, 7);
        let w = Word::from_ref(r);
        assert!(w.is_ref());
        assert!(!w.is_null());
        assert_eq!(w.as_ref(), Some(r));
        assert_eq!(w.as_scalar(), None);
    }

    #[test]
    fn null_is_ref_without_target() {
        let w = Word::null();
        assert!(w.is_ref());
        assert!(w.is_null());
        assert_eq!(w.as_ref(), None);
    }

    #[test]
    fn objref_parts_round_trip() {
        for slot in [0u32, 1, 255, 65535, (1 << 24) - 2] {
            for generation in [0u8, 1, 128, 255] {
                let r = ObjRef::from_parts(slot, generation);
                assert_eq!(r.slot(), slot);
                assert_eq!(r.generation(), generation);
                assert_eq!(ObjRef::from_raw(r.to_raw()), Some(r));
            }
        }
    }

    #[test]
    fn bits_round_trip() {
        let w = Word::from_scalar(-99);
        assert_eq!(Word::from_bits(w.to_bits()), w);
    }

    #[test]
    fn debug_formatting_is_never_empty() {
        assert_eq!(format!("{:?}", Word::null()), "null");
        assert_eq!(format!("{:?}", Word::from_scalar(3)), "3");
        let r = ObjRef::from_parts(5, 1);
        assert_eq!(format!("{r:?}"), "ObjRef(5g1)");
    }
}
