//! Property-style test: the heap's mark-sweep collector agrees with a
//! model reachability computation over random object graphs.
//!
//! Cases come from an explicitly seeded deterministic RNG with bounded
//! case counts, so CI sees exactly the same object graphs every run.

use std::collections::{HashMap, HashSet};

use omt_heap::{ClassDesc, Heap, ObjRef, RootSet, Word};
use omt_util::rng::StdRng;

#[derive(Debug, Clone)]
enum Op {
    /// Allocate a new object; it becomes root if fewer than 3 roots
    /// exist.
    Alloc,
    /// Store a reference `objects[src].field = objects[dst]`.
    Link { src: usize, field: usize, dst: usize },
    /// Null a field.
    Unlink { src: usize, field: usize },
    /// Run a collection and cross-check liveness.
    Collect,
}

/// Same op mix as the original generator: Alloc 3 / Link 3 / Unlink 1 /
/// Collect 1.
fn random_op(rng: &mut StdRng) -> Op {
    match rng.gen_range(0..8u32) {
        0..=2 => Op::Alloc,
        3..=5 => Op::Link {
            src: rng.gen_range(0..64usize),
            field: rng.gen_range(0..2usize),
            dst: rng.gen_range(0..64usize),
        },
        6 => Op::Unlink { src: rng.gen_range(0..64usize), field: rng.gen_range(0..2usize) },
        _ => Op::Collect,
    }
}

/// Model reachability: roots ∪ transitively linked objects.
fn model_reachable(
    roots: &[usize],
    links: &HashMap<(usize, usize), usize>,
    allocated: usize,
) -> HashSet<usize> {
    let mut live = HashSet::new();
    let mut stack: Vec<usize> = roots.iter().copied().filter(|r| *r < allocated).collect();
    while let Some(o) = stack.pop() {
        if live.insert(o) {
            for field in 0..2 {
                if let Some(&dst) = links.get(&(o, field)) {
                    stack.push(dst);
                }
            }
        }
    }
    live
}

#[test]
fn collector_matches_model_reachability() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0x6C_0113C7 + case);
        let n_ops = rng.gen_range(1..80usize);
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut rng)).collect();

        let heap = Heap::new();
        let class = heap.define_class(ClassDesc::with_var_fields("N", &["a", "b"]));

        // Model state. `objects` maps model id -> ObjRef; dead objects
        // keep their entry so stale indices in ops are simply skipped.
        let mut objects: Vec<ObjRef> = Vec::new();
        let mut dead: HashSet<usize> = HashSet::new();
        let mut links: HashMap<(usize, usize), usize> = HashMap::new();
        let mut roots: Vec<usize> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc => {
                    let r = heap.alloc(class).unwrap();
                    let id = objects.len();
                    objects.push(r);
                    if roots.len() < 3 {
                        roots.push(id);
                    }
                }
                Op::Link { src, field, dst } => {
                    let (Some(&s), Some(&d)) = (objects.get(src), objects.get(dst)) else {
                        continue;
                    };
                    if dead.contains(&src) || dead.contains(&dst) {
                        continue;
                    }
                    heap.store(s, field, Word::from_ref(d));
                    links.insert((src, field), dst);
                }
                Op::Unlink { src, field } => {
                    let Some(&s) = objects.get(src) else { continue };
                    if dead.contains(&src) {
                        continue;
                    }
                    heap.store(s, field, Word::null());
                    links.remove(&(src, field));
                }
                Op::Collect => {
                    let root_refs: Vec<ObjRef> = roots.iter().map(|&i| objects[i]).collect();
                    heap.collect(&RootSet::from(root_refs), &[]);
                    let live = model_reachable(&roots, &links, objects.len());
                    for (id, r) in objects.iter().enumerate() {
                        if dead.contains(&id) {
                            continue;
                        }
                        let model_live = live.contains(&id);
                        assert_eq!(
                            heap.is_valid(*r),
                            model_live,
                            "object {id} liveness mismatch (case {case})"
                        );
                        if !model_live {
                            dead.insert(id);
                            links.retain(|(s, _), _| *s != id);
                        }
                    }
                    assert_eq!(heap.live_objects(), live.len(), "live count (case {case})");
                }
            }
        }

        // Final collection must agree too.
        let root_refs: Vec<ObjRef> = roots.iter().map(|&i| objects[i]).collect();
        heap.collect(&RootSet::from(root_refs), &[]);
        let live = model_reachable(&roots, &links, objects.len());
        assert_eq!(heap.live_objects(), live.len(), "final live count (case {case})");
    }
}

/// Slot recycling: after collecting garbage, new allocations reuse
/// slots and never alias a surviving object.
#[test]
fn recycled_slots_never_alias_survivors() {
    for case in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0x5107 + case);
        let keep = rng.gen_range(1..20usize);
        let churn = rng.gen_range(1..50usize);
        let heap = Heap::new();
        let class = heap.define_class(ClassDesc::with_var_fields("N", &["v"]));
        let keepers: Vec<ObjRef> = (0..keep)
            .map(|i| {
                let r = heap.alloc(class).unwrap();
                heap.store(r, 0, Word::from_scalar(i as i64));
                r
            })
            .collect();
        for _ in 0..churn {
            heap.alloc(class).unwrap();
        }
        heap.collect(&RootSet::from(keepers.clone()), &[]);
        let fresh: Vec<ObjRef> = (0..churn).map(|_| heap.alloc(class).unwrap()).collect();
        for f in &fresh {
            heap.store(*f, 0, Word::from_scalar(-1));
            assert!(!keepers.contains(f), "fresh ref aliases a survivor (case {case})");
        }
        for (i, k) in keepers.iter().enumerate() {
            assert_eq!(heap.load(*k, 0).as_scalar(), Some(i as i64), "case {case}");
        }
    }
}
