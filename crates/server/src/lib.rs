//! # omt-server — an overload-robust transactional service
//!
//! The experiments in `omt-bench` drive the STM with closed-loop
//! benchmark harnesses: N threads issuing operations back-to-back.
//! Real deployments look different — requests *arrive* at their own
//! rate whether or not the service keeps up, and a runtime that only
//! guarantees eventual commit is not enough; each request must commit
//! *within its latency budget* or get out of the way. This crate puts a
//! small transactional bank/KV service in front of the STM and makes
//! that robustness story concrete:
//!
//! - [`service`] — the service proper: typed requests over STM-backed
//!   accounts, per-request deadlines (via
//!   [`Stm::try_atomically_within`](omt_stm::Stm::try_atomically_within)),
//!   and typed give-up errors instead of unbounded retry loops;
//! - [`admission`] — load shedding from live runtime signals (abort
//!   rate, serial-mode entries, in-flight depth), with a
//!   starvation-escalation path so a session that keeps getting shed
//!   eventually bypasses the shedder — karma at the admission layer,
//!   mirroring the Karma contention manager inside the STM;
//! - [`kv`] — the KV mode: the same deadline/typed-error contract over
//!   a transactional hash map, switchable between **boosted** conflict
//!   detection (per-key abstract locks and inverse-operation undo via
//!   [`omt_workloads::BoostedHashMap`]) and plain **word-level**
//!   optimistic transactions over the same physical structure;
//! - [`traffic`] — an open-loop traffic generator: tens of thousands of
//!   lightweight sessions multiplexed over a worker pool, zipfian key
//!   popularity, exponential inter-arrival times, and latency measured
//!   from *scheduled arrival* (so queueing delay counts, the honest
//!   open-loop metric), plus a continuous audit thread checking the
//!   bank's conservation invariant while faults are injected.
//!
//! The measured experiment over this crate is E10
//! (`repro --experiment e10`, `BENCH_e10_service.json`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod kv;
pub mod service;
pub mod traffic;

pub use admission::{AdmissionController, LoadSignals, ShedReason};
pub use kv::{KvConfig, KvError, KvRequest, KvResponse, KvStore};
pub use service::{Request, Response, Service, ServiceConfig, ServiceError, Session};
pub use traffic::{run_open_loop, TrafficConfig, TrafficOutcome};
