//! The KV mode of the service: typed requests over a transactional
//! hash map, switchable between **boosted** (semantic, per-key abstract
//! locks — [`omt_workloads::BoostedHashMap`]'s `*_in` operations) and
//! **word-level** (plain optimistic transactions over the same physical
//! structure) conflict detection.
//!
//! The robustness story mirrors [`crate::service`]: every request runs
//! through [`Stm::try_atomically_within`], so it either commits inside
//! its latency budget or comes back with a typed error — under boosted
//! conflict detection too, because a bounded abstract-lock acquisition
//! ([`TxError::BUSY`](omt_stm::TxError)) feeds the same retry loop as a
//! word-level conflict. The knob exists so the overload experiments can
//! ask the semantic-conflict question directly: under hot-key traffic,
//! does detecting conflicts at key granularity shed less load than
//! detecting them at word granularity?

use std::sync::Arc;
use std::time::Duration;

use omt_heap::Heap;
use omt_stm::{RetryExhausted, Stm, StmConfig};
use omt_workloads::BoostedHashMap;

/// Tuning for a [`KvStore`].
#[derive(Debug, Clone, Copy)]
pub struct KvConfig {
    /// Number of hash buckets (chains).
    pub buckets: usize,
    /// Abstract-lock stripes (rounded up to a power of two). Size at or
    /// above the hot-key range so distinct keys get disjoint locks.
    pub lock_stripes: usize,
    /// Conflict-detection mode: `true` routes requests through the
    /// boosted per-key abstract locks; `false` runs the same physical
    /// operations as ordinary word-level transactions. A store must be
    /// driven in one mode for its whole life — word-level requests
    /// would race straight past the locks a concurrent boosted request
    /// depends on.
    pub boosted: bool,
    /// Per-request deadline (measured from the first attempt).
    pub deadline: Duration,
    /// The STM underneath. Defaults to snapshot reads with depth-1
    /// version chains (DESIGN.md §4.13), keeping the read path
    /// abort-free even when a lookup's snapshot straddles a concurrent
    /// mutation of the same chain.
    pub stm: StmConfig,
}

impl Default for KvConfig {
    fn default() -> KvConfig {
        KvConfig {
            buckets: 256,
            lock_stripes: 4096,
            boosted: true,
            deadline: Duration::from_millis(10),
            stm: StmConfig { snapshot_reads: true, mv_depth: 1, ..StmConfig::default() },
        }
    }
}

/// One request to the KV store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvRequest {
    /// Insert `key -> value` unless the key is present.
    Put {
        /// The key.
        key: i64,
        /// The value.
        value: i64,
    },
    /// Remove a key.
    Delete {
        /// The key.
        key: i64,
    },
    /// Look a key up.
    Get {
        /// The key.
        key: i64,
    },
}

/// A successful KV request's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvResponse {
    /// Whether the put inserted (an existing key is left untouched).
    Inserted(bool),
    /// The removed value, if the key was present.
    Deleted(Option<i64>),
    /// The key's value, if present.
    Value(Option<i64>),
}

/// Why a KV request failed; the same give-up taxonomy as
/// [`crate::ServiceError`], minus the bank-specific variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// The per-request deadline passed before commit.
    DeadlineExceeded {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The retry budget was consumed by conflicts.
    RetryExhausted {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The heap's slot table is exhausted (terminal).
    HeapFull,
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::DeadlineExceeded { attempts } => {
                write!(f, "deadline exceeded after {attempts} attempts")
            }
            KvError::RetryExhausted { attempts } => {
                write!(f, "retry budget exhausted after {attempts} attempts")
            }
            KvError::HeapFull => write!(f, "heap slot table exhausted"),
        }
    }
}

impl std::error::Error for KvError {}

/// A transactional KV store with switchable conflict granularity.
#[derive(Debug)]
pub struct KvStore {
    map: BoostedHashMap,
    config: KvConfig,
}

impl KvStore {
    /// Builds the store and its runtime.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero or the heap cannot hold the bucket
    /// heads.
    pub fn new(config: KvConfig) -> Arc<KvStore> {
        let stm = Arc::new(Stm::with_config(Arc::new(Heap::new()), config.stm));
        let map = BoostedHashMap::new(stm, config.buckets, config.lock_stripes);
        Arc::new(KvStore { map, config })
    }

    /// The configuration this store was built with.
    pub fn config(&self) -> &KvConfig {
        &self.config
    }

    /// The STM underneath (for stats and fault injection).
    pub fn stm(&self) -> &Arc<Stm> {
        self.map.stm()
    }

    /// The map underneath (for lock-table counters and audits).
    pub fn map(&self) -> &BoostedHashMap {
        &self.map
    }

    /// Executes one request under the configured conflict-detection
    /// mode and deadline.
    ///
    /// # Errors
    ///
    /// See [`KvError`].
    pub fn execute(&self, request: &KvRequest) -> Result<KvResponse, KvError> {
        let boosted = self.config.boosted;
        let result = self.stm().try_atomically_within(self.config.deadline, |tx| {
            Ok(match (*request, boosted) {
                (KvRequest::Put { key, value }, true) => {
                    KvResponse::Inserted(self.map.put_in(tx, key, value)?)
                }
                (KvRequest::Put { key, value }, false) => {
                    KvResponse::Inserted(self.map.raw_put_in(tx, key, value)?)
                }
                (KvRequest::Delete { key }, true) => {
                    KvResponse::Deleted(self.map.delete_in(tx, key)?)
                }
                (KvRequest::Delete { key }, false) => {
                    KvResponse::Deleted(self.map.raw_delete_in(tx, key)?)
                }
                (KvRequest::Get { key }, true) => KvResponse::Value(self.map.get_in(tx, key)?),
                (KvRequest::Get { key }, false) => KvResponse::Value(self.map.raw_get_in(tx, key)?),
            })
        });
        result.map_err(|e| match e {
            RetryExhausted::DeadlineExceeded { attempts } => KvError::DeadlineExceeded { attempts },
            RetryExhausted::Conflicts { attempts, .. } => KvError::RetryExhausted { attempts },
            RetryExhausted::HeapFull => KvError::HeapFull,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(boosted: bool) -> Arc<KvStore> {
        KvStore::new(KvConfig { buckets: 8, lock_stripes: 64, boosted, ..KvConfig::default() })
    }

    #[test]
    fn both_modes_serve_the_same_requests() {
        for boosted in [true, false] {
            let kv = store(boosted);
            assert_eq!(
                kv.execute(&KvRequest::Put { key: 1, value: 10 }),
                Ok(KvResponse::Inserted(true))
            );
            assert_eq!(
                kv.execute(&KvRequest::Put { key: 1, value: 99 }),
                Ok(KvResponse::Inserted(false)),
                "existing key untouched (boosted={boosted})"
            );
            assert_eq!(kv.execute(&KvRequest::Get { key: 1 }), Ok(KvResponse::Value(Some(10))));
            assert_eq!(
                kv.execute(&KvRequest::Delete { key: 1 }),
                Ok(KvResponse::Deleted(Some(10)))
            );
            assert_eq!(kv.execute(&KvRequest::Get { key: 1 }), Ok(KvResponse::Value(None)));
        }
    }

    #[test]
    fn boosted_mode_takes_abstract_locks_and_word_mode_does_not() {
        let boosted = store(true);
        boosted.execute(&KvRequest::Put { key: 3, value: 30 }).unwrap();
        assert!(boosted.map().locks().stats().acquires >= 1);

        let word = store(false);
        word.execute(&KvRequest::Put { key: 3, value: 30 }).unwrap();
        assert_eq!(word.map().locks().stats().acquires, 0);
    }

    #[test]
    fn concurrent_boosted_requests_stay_consistent() {
        let kv = store(true);
        std::thread::scope(|scope| {
            for t in 0..4i64 {
                let kv = Arc::clone(&kv);
                scope.spawn(move || {
                    for i in 0..200 {
                        let key = (t * 211 + i * 17) % 64;
                        match i % 3 {
                            0 => {
                                kv.execute(&KvRequest::Put { key, value: key * 2 }).unwrap();
                            }
                            1 => {
                                kv.execute(&KvRequest::Delete { key }).unwrap();
                            }
                            _ => {
                                kv.execute(&KvRequest::Get { key }).unwrap();
                            }
                        }
                    }
                });
            }
        });
        // Every surviving entry carries the value its put wrote.
        for (k, v) in kv.map().snapshot() {
            assert_eq!(v, k * 2);
        }
    }
}
