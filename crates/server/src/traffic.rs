//! Open-loop traffic generation with continuous invariant auditing.
//!
//! Closed-loop drivers (N threads issuing requests back-to-back)
//! understate overload: when the service slows down, a closed loop
//! politely slows its offered load to match, hiding the queueing
//! catastrophe a real arrival process produces. This generator is
//! **open-loop**: requests arrive on a Poisson schedule at a configured
//! rate whether or not the service keeps up, and each request's latency
//! is measured from its *scheduled arrival time* — so time spent
//! queued behind a lagging worker counts, which is exactly the honest
//! number (the "coordinated omission" fix).
//!
//! Tens of thousands of lightweight [`Session`]s are multiplexed over
//! a small worker pool; zipfian account popularity concentrates
//! contention on a hot set the way real key distributions do. A
//! dedicated auditor thread sums the ledger in a read-only transaction
//! throughout the run — under fault injection (kills, stalls) this is
//! the live proof that no update was half-applied or lost.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use omt_util::hist::LogHistogram;
use omt_util::rng::{StdRng, Zipf};

use crate::service::{Request, Service, ServiceError, Session};

/// Shape of one open-loop run.
#[derive(Debug, Clone, Copy)]
pub struct TrafficConfig {
    /// Logical sessions (clients) multiplexed over the workers.
    pub sessions: usize,
    /// OS threads driving the sessions.
    pub workers: usize,
    /// Total offered load, requests per second across all workers.
    pub arrival_rate: f64,
    /// Run length.
    pub duration: Duration,
    /// Zipf exponent of account popularity (0 = uniform, ~1 = web-like
    /// skew).
    pub zipf_exponent: f64,
    /// Fraction of requests that are balance reads (the rest are
    /// transfers).
    pub read_fraction: f64,
    /// Period of the continuous invariant auditor; `None` disables it.
    pub audit_period: Option<Duration>,
    /// Seed for arrivals, key choice, and operation mix.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> TrafficConfig {
        TrafficConfig {
            sessions: 10_000,
            workers: 4,
            arrival_rate: 20_000.0,
            duration: Duration::from_millis(500),
            zipf_exponent: 1.0,
            read_fraction: 0.5,
            audit_period: Some(Duration::from_millis(5)),
            seed: 42,
        }
    }
}

/// What one open-loop run produced.
#[derive(Debug)]
pub struct TrafficOutcome {
    /// Requests the schedule offered.
    pub offered: u64,
    /// Requests that committed.
    pub completed: u64,
    /// Requests refused by admission control.
    pub shed: u64,
    /// Requests that missed their deadline after admission.
    pub deadline_misses: u64,
    /// Requests whose conflict retry budget ran out.
    pub retry_exhausted: u64,
    /// Requests admitted via the starvation-escalation path.
    pub escalations: u64,
    /// Audits the continuous auditor completed.
    pub audits: u64,
    /// Audits that observed a broken conservation invariant. Any value
    /// but zero is a serializability bug.
    pub invariant_violations: u64,
    /// Whether the post-run audit balanced.
    pub final_audit_ok: bool,
    /// Latency of completed requests in microseconds, measured from
    /// scheduled arrival (queueing included).
    pub latency_us: LogHistogram,
    /// Wall-clock run length.
    pub elapsed: Duration,
}

impl TrafficOutcome {
    /// Committed requests per second of wall-clock time.
    pub fn goodput_per_sec(&self) -> f64 {
        self.completed as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Fraction of offered requests that were shed.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }

    /// Fraction of offered requests that committed.
    pub fn goodput_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.completed as f64 / self.offered as f64
        }
    }
}

/// Exponential inter-arrival draw with mean `1/rate` seconds.
fn exp_interval(rng: &mut StdRng, rate: f64) -> f64 {
    let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    // 1 - u is in (0, 1]; ln of it is finite and non-positive.
    -(1.0 - u).ln() / rate
}

/// Waits until `deadline`: sleeps for coarse gaps, spins the tail so
/// arrival times stay accurate at high rates.
fn pace_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let gap = deadline - now;
        if gap > Duration::from_micros(200) {
            std::thread::sleep(gap - Duration::from_micros(100));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Per-worker tally, merged into the [`TrafficOutcome`] at the end.
#[derive(Debug, Default)]
struct WorkerTally {
    offered: u64,
    completed: u64,
    shed: u64,
    deadline_misses: u64,
    retry_exhausted: u64,
    escalations: u64,
    latency_us: LogHistogram,
}

/// Runs one open-loop experiment against `service`.
///
/// # Panics
///
/// Panics if `workers == 0`, `sessions < workers`, or the rate is not
/// positive and finite.
pub fn run_open_loop(service: &Arc<Service>, config: &TrafficConfig) -> TrafficOutcome {
    assert!(config.workers > 0, "need at least one worker");
    assert!(config.sessions >= config.workers, "need at least one session per worker");
    assert!(
        config.arrival_rate > 0.0 && config.arrival_rate.is_finite(),
        "arrival rate must be positive"
    );
    let zipf = Zipf::new(service.config().accounts, config.zipf_exponent);
    let accounts = service.config().accounts;
    let stop = AtomicBool::new(false);
    let audits = AtomicU64::new(0);
    let violations = AtomicU64::new(0);

    let start = Instant::now();
    let tallies: Vec<WorkerTally> = std::thread::scope(|scope| {
        // The continuous auditor: read-only full-ledger sums while the
        // storm rages. Runs outside the deadline/admission path so it
        // always completes (serial escalation bounds it).
        if let Some(period) = config.audit_period {
            let (stop, audits, violations) = (&stop, &audits, &violations);
            scope.spawn(move || {
                let expected = service.expected_total();
                while !stop.load(Ordering::Relaxed) {
                    let total = service.audit_total();
                    audits.fetch_add(1, Ordering::Relaxed);
                    if total != expected {
                        violations.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::sleep(period);
                }
            });
        }

        let workers: Vec<_> = (0..config.workers)
            .map(|w| {
                let zipf = &zipf;
                let stop = &stop;
                scope.spawn(move || run_worker(service, config, zipf, accounts, w, start, stop))
            })
            .collect();
        // Worker panics indicate a broken service invariant, not load;
        // propagate rather than report a truncated tally as success.
        let tallies: Vec<WorkerTally> =
            workers.into_iter().map(|h| h.join().expect("worker panicked")).collect();
        stop.store(true, Ordering::Relaxed);
        tallies
    });
    let elapsed = start.elapsed();

    let mut outcome = TrafficOutcome {
        offered: 0,
        completed: 0,
        shed: 0,
        deadline_misses: 0,
        retry_exhausted: 0,
        escalations: 0,
        audits: audits.load(Ordering::Relaxed),
        invariant_violations: violations.load(Ordering::Relaxed),
        final_audit_ok: service.audit_total() == service.expected_total(),
        latency_us: LogHistogram::new(),
        elapsed,
    };
    for tally in tallies {
        outcome.offered += tally.offered;
        outcome.completed += tally.completed;
        outcome.shed += tally.shed;
        outcome.deadline_misses += tally.deadline_misses;
        outcome.retry_exhausted += tally.retry_exhausted;
        outcome.escalations += tally.escalations;
        outcome.latency_us.merge(&tally.latency_us);
    }
    outcome
}

/// One worker: paces its share of the Poisson schedule over its share
/// of the sessions.
fn run_worker(
    service: &Arc<Service>,
    config: &TrafficConfig,
    zipf: &Zipf,
    accounts: usize,
    worker: usize,
    start: Instant,
    _stop: &AtomicBool,
) -> WorkerTally {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(worker as u64 * 0x9E37));
    let rate = config.arrival_rate / config.workers as f64;
    let span = config.duration.as_secs_f64();
    // This worker's slice of the session population.
    let mut sessions: Vec<Session> = (0..config.sessions)
        .filter(|s| s % config.workers == worker)
        .map(|_| service.session())
        .collect();
    let n_sessions = sessions.len();

    let mut tally = WorkerTally::default();
    let mut at = 0.0f64;
    loop {
        at += exp_interval(&mut rng, rate);
        if at >= span {
            break;
        }
        let scheduled = start + Duration::from_secs_f64(at);
        pace_until(scheduled);

        let session = &mut sessions[rng.gen_range(0..n_sessions)];
        let request = if rng.gen_bool(config.read_fraction) {
            Request::Balance { account: zipf.sample(&mut rng) }
        } else {
            let from = zipf.sample(&mut rng);
            let mut to = rng.gen_range(0..accounts - 1);
            if to >= from {
                to += 1;
            }
            Request::Transfer { from, to, amount: rng.gen_range(1..100i64) }
        };
        if session.is_escalated() {
            tally.escalations += 1;
        }
        tally.offered += 1;
        let result = session.call(&request);
        // Latency from *scheduled arrival*: a worker running behind
        // charges its lag to every queued request, as an open-loop
        // harness must.
        let latency = Instant::now().saturating_duration_since(scheduled);
        match result {
            Ok(_) => {
                tally.completed += 1;
                tally.latency_us.record(latency.as_micros() as u64);
            }
            Err(ServiceError::Overloaded(_)) => tally.shed += 1,
            Err(ServiceError::DeadlineExceeded { .. }) => tally.deadline_misses += 1,
            Err(ServiceError::RetryExhausted { .. }) => tally.retry_exhausted += 1,
            Err(ServiceError::NoSuchAccount { .. } | ServiceError::HeapFull) => {
                unreachable!("generator only emits valid requests")
            }
        }
    }
    tally
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    fn quick_config() -> TrafficConfig {
        TrafficConfig {
            sessions: 64,
            workers: 2,
            arrival_rate: 2_000.0,
            duration: Duration::from_millis(80),
            audit_period: Some(Duration::from_millis(2)),
            ..TrafficConfig::default()
        }
    }

    #[test]
    fn open_loop_run_conserves_money_and_completes_requests() {
        let service = Service::new(ServiceConfig { accounts: 64, ..ServiceConfig::default() });
        let outcome = run_open_loop(&service, &quick_config());
        assert!(outcome.offered > 0, "schedule produced no arrivals");
        assert!(outcome.completed > 0, "nothing committed");
        assert!(outcome.audits > 0, "auditor never ran");
        assert_eq!(outcome.invariant_violations, 0, "lost or torn update");
        assert!(outcome.final_audit_ok);
        assert_eq!(
            outcome.offered,
            outcome.completed + outcome.shed + outcome.deadline_misses + outcome.retry_exhausted,
            "every offered request is accounted for exactly once"
        );
        assert_eq!(outcome.latency_us.count(), outcome.completed);
        assert!(outcome.latency_us.percentile(50.0) <= outcome.latency_us.percentile(99.0));
    }

    #[test]
    fn arrivals_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                exp_interval(&mut a, 100.0).to_bits(),
                exp_interval(&mut b, 100.0).to_bits()
            );
        }
    }
}
