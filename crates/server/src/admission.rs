//! Admission control and load shedding from live runtime signals.
//!
//! An overloaded transactional service fails in a specific, ugly way:
//! past the saturation knee every admitted request raises the abort
//! rate for everyone else, latency explodes, and goodput *drops* as
//! offered load rises (the classic congestion-collapse curve). The
//! cure is to refuse work at the front door while the floor is
//! burning. This module decides when the floor is burning using
//! signals the STM already maintains:
//!
//! - **in-flight depth** — requests currently inside the service; a
//!   hard cap bounds queueing ahead of the runtime;
//! - **abort rate** — the fraction of transactions aborting over the
//!   last sampling window (from [`StmStatsSnapshot`] deltas); a high
//!   rate means admitted requests are mostly burning retries;
//! - **serial-mode entries** — retry loops escalating into the
//!   exclusive serial gate per second; each one stalls the whole
//!   runtime, so a burst of them is the strongest overload signal.
//!
//! Shedding is refusal with a typed [`ShedReason`], never silent
//! dropping — the client can back off, downgrade, or retry elsewhere.
//! To keep refusal from becoming starvation, callers that have been
//! shed repeatedly use [`AdmissionController::force_admit`], which
//! bypasses the checks: the same oldest-wins/karma idea the STM's
//! contention managers apply to transactions, lifted to requests.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use omt_stm::{Stm, StmStatsSnapshot};
use omt_util::sync::Mutex;

/// Why a request was refused at the door.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShedReason {
    /// The in-flight cap is reached.
    InflightFull {
        /// Requests currently being served.
        inflight: usize,
    },
    /// The windowed abort rate is above the shedding threshold.
    AbortStorm {
        /// Aborts / (aborts + commits) over the last window.
        abort_rate: f64,
    },
    /// Serial-mode escalations per second are above the threshold.
    SerialStorm {
        /// Serial-gate entries per second over the last window.
        per_sec: f64,
    },
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::InflightFull { inflight } => {
                write!(f, "in-flight cap reached ({inflight} executing)")
            }
            ShedReason::AbortStorm { abort_rate } => {
                write!(f, "abort rate {:.0}% over threshold", abort_rate * 100.0)
            }
            ShedReason::SerialStorm { per_sec } => {
                write!(f, "serial-mode rate {per_sec:.1}/s over threshold")
            }
        }
    }
}

/// Windowed view of the STM's health, refreshed at most once per
/// `window` by whichever caller gets there first (everyone else reads
/// the cached rates — two relaxed loads on the admit fast path).
#[derive(Debug)]
pub struct LoadSignals {
    stm: Arc<Stm>,
    window: Duration,
    epoch: Instant,
    /// Microseconds since `epoch` of the last completed refresh; also
    /// the claim ticket — the thread that CASes it forward does the
    /// refresh.
    last_refresh: AtomicU64,
    /// Stats baseline at the last refresh (guards the refresh itself).
    baseline: Mutex<StmStatsSnapshot>,
    /// f64 bit patterns of the cached rates.
    abort_rate_bits: AtomicU64,
    serial_per_sec_bits: AtomicU64,
}

impl LoadSignals {
    /// Creates signals over `stm`, sampling at most once per `window`.
    pub fn new(stm: Arc<Stm>, window: Duration) -> LoadSignals {
        let baseline = stm.stats();
        LoadSignals {
            stm,
            window,
            epoch: Instant::now(),
            last_refresh: AtomicU64::new(0),
            baseline: Mutex::new(baseline),
            abort_rate_bits: AtomicU64::new(0f64.to_bits()),
            serial_per_sec_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Refreshes the cached rates if the window has elapsed. Cheap when
    /// it hasn't: one clock read and one relaxed load.
    pub fn refresh(&self) {
        let now = self.epoch.elapsed().as_micros() as u64;
        let last = self.last_refresh.load(Ordering::Relaxed);
        let window = self.window.as_micros() as u64;
        if now.saturating_sub(last) < window.max(1) {
            return;
        }
        // One refresher per window; losers use the winner's numbers.
        if self.last_refresh.compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            != Ok(last)
        {
            return;
        }
        let mut baseline = self.baseline.lock();
        let snap = self.stm.stats();
        let delta = snap.delta_since(&baseline);
        *baseline = snap;
        let secs = ((now - last) as f64 / 1e6).max(1e-6);
        let attempts = delta.aborts() + delta.commits;
        let abort_rate = if attempts == 0 { 0.0 } else { delta.aborts() as f64 / attempts as f64 };
        self.abort_rate_bits.store(abort_rate.to_bits(), Ordering::Relaxed);
        self.serial_per_sec_bits
            .store((delta.serial_entries as f64 / secs).to_bits(), Ordering::Relaxed);
    }

    /// Aborts / (aborts + commits) over the last completed window.
    pub fn abort_rate(&self) -> f64 {
        f64::from_bits(self.abort_rate_bits.load(Ordering::Relaxed))
    }

    /// Serial-mode escalations per second over the last window.
    pub fn serial_per_sec(&self) -> f64 {
        f64::from_bits(self.serial_per_sec_bits.load(Ordering::Relaxed))
    }
}

/// RAII token for one admitted request; dropping it releases the
/// in-flight slot (including during a panic unwind).
#[derive(Debug)]
pub struct InflightGuard<'a> {
    counter: &'a AtomicUsize,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The front door: admit or shed, from [`LoadSignals`] plus an
/// in-flight cap.
#[derive(Debug)]
pub struct AdmissionController {
    signals: LoadSignals,
    max_inflight: usize,
    shed_abort_rate: f64,
    shed_serial_per_sec: f64,
    inflight: AtomicUsize,
    sheds: AtomicU64,
}

impl AdmissionController {
    /// Builds a controller over `stm`'s signals.
    pub fn new(
        stm: Arc<Stm>,
        window: Duration,
        max_inflight: usize,
        shed_abort_rate: f64,
        shed_serial_per_sec: f64,
    ) -> AdmissionController {
        assert!(max_inflight > 0, "an in-flight cap of 0 admits nothing");
        AdmissionController {
            signals: LoadSignals::new(stm, window),
            max_inflight,
            shed_abort_rate,
            shed_serial_per_sec,
            inflight: AtomicUsize::new(0),
            sheds: AtomicU64::new(0),
        }
    }

    /// Admits the request or refuses it with the dominant reason.
    ///
    /// # Errors
    ///
    /// The first [`ShedReason`] that applies, strongest signal first
    /// (serial storm, then abort storm, then the in-flight cap).
    pub fn admit(&self) -> Result<InflightGuard<'_>, ShedReason> {
        self.signals.refresh();
        let serial = self.signals.serial_per_sec();
        if serial > self.shed_serial_per_sec {
            self.sheds.fetch_add(1, Ordering::Relaxed);
            return Err(ShedReason::SerialStorm { per_sec: serial });
        }
        let abort_rate = self.signals.abort_rate();
        if abort_rate > self.shed_abort_rate {
            self.sheds.fetch_add(1, Ordering::Relaxed);
            return Err(ShedReason::AbortStorm { abort_rate });
        }
        let inflight = self.inflight.fetch_add(1, Ordering::Relaxed);
        if inflight >= self.max_inflight {
            self.inflight.fetch_sub(1, Ordering::Relaxed);
            self.sheds.fetch_add(1, Ordering::Relaxed);
            return Err(ShedReason::InflightFull { inflight });
        }
        Ok(InflightGuard { counter: &self.inflight })
    }

    /// Admits unconditionally (the starvation-escalation path): the
    /// request still counts against the in-flight gauge so the signals
    /// stay honest, but no threshold can refuse it.
    pub fn force_admit(&self) -> InflightGuard<'_> {
        self.inflight.fetch_add(1, Ordering::Relaxed);
        InflightGuard { counter: &self.inflight }
    }

    /// Requests currently being served.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Total requests refused so far.
    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }

    /// The live signals (for reporting).
    pub fn signals(&self) -> &LoadSignals {
        &self.signals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_heap::Heap;

    fn stm() -> Arc<Stm> {
        Arc::new(Stm::new(Arc::new(Heap::new())))
    }

    #[test]
    fn inflight_cap_sheds_and_guard_releases() {
        let ctl = AdmissionController::new(stm(), Duration::from_millis(50), 2, 1.0, f64::MAX);
        let a = ctl.admit().unwrap();
        let _b = ctl.admit().unwrap();
        assert_eq!(ctl.inflight(), 2);
        match ctl.admit() {
            Err(ShedReason::InflightFull { inflight: 2 }) => {}
            other => panic!("expected InflightFull, got {other:?}"),
        }
        assert_eq!(ctl.sheds(), 1);
        drop(a);
        assert_eq!(ctl.inflight(), 1);
        let _c = ctl.admit().unwrap();
    }

    #[test]
    fn force_admit_bypasses_a_full_cap() {
        let ctl = AdmissionController::new(stm(), Duration::from_millis(50), 1, 1.0, f64::MAX);
        let _a = ctl.admit().unwrap();
        assert!(ctl.admit().is_err());
        let g = ctl.force_admit();
        assert_eq!(ctl.inflight(), 2, "forced request still counts");
        drop(g);
        assert_eq!(ctl.inflight(), 1);
    }

    #[test]
    fn abort_storm_is_observed_through_the_window() {
        let s = Arc::new(Stm::with_config(
            Arc::new(Heap::new()),
            omt_stm::StmConfig {
                max_retries: 0,
                serial_after_aborts: None,
                ..omt_stm::StmConfig::default()
            },
        ));
        let signals = LoadSignals::new(s.clone(), Duration::from_millis(1));
        // Generate an abort-heavy window: every try gives up once.
        for _ in 0..50 {
            let _: Result<(), _> = s.try_atomically(|_tx| Err(omt_stm::TxError::EXPLICIT));
        }
        std::thread::sleep(Duration::from_millis(2));
        signals.refresh();
        assert!(signals.abort_rate() > 0.5, "abort rate {}", signals.abort_rate());
    }

    #[test]
    fn shed_reasons_render() {
        assert!(ShedReason::InflightFull { inflight: 3 }.to_string().contains('3'));
        assert!(ShedReason::AbortStorm { abort_rate: 0.9 }.to_string().contains("90"));
        assert!(ShedReason::SerialStorm { per_sec: 2.0 }.to_string().contains("serial"));
    }
}
