//! The transactional bank/KV service: typed requests over STM-backed
//! accounts, with per-request deadlines and admission control.
//!
//! Every request runs as one atomic block through
//! [`Stm::try_atomically_within`], so the STM's whole robustness stack
//! — capped randomized backoff, contention management, serial-mode
//! escalation, orphan recovery — sits behind a *bounded* entry point:
//! a request either commits inside its latency budget or comes back
//! with a typed error the caller can act on. Nothing in the service
//! loops forever.
//!
//! Sessions are deliberately lightweight (two words of state over an
//! `Arc<Service>`): the open-loop traffic generator multiplexes tens
//! of thousands of them over a small worker pool. The per-session
//! state is the starvation counter: a session that keeps getting shed
//! escalates past the admission controller (see
//! [`AdmissionController::force_admit`]), trading a little extra load
//! for a guarantee that shedding never turns into starvation.

use std::sync::Arc;
use std::time::Duration;

use omt_heap::{ClassDesc, Heap, ObjRef, Word};
use omt_stm::{ClockMode, CmPolicy, RetryExhausted, Stm, StmConfig};

use crate::admission::{AdmissionController, ShedReason};

/// Field index of an account's balance.
const BALANCE: usize = 0;

/// Tuning for a [`Service`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Number of accounts in the ledger.
    pub accounts: usize,
    /// Initial balance of each account (the conserved quantity).
    pub initial_balance: i64,
    /// Per-request deadline: a request that cannot commit within this
    /// budget returns [`ServiceError::DeadlineExceeded`].
    pub deadline: Duration,
    /// Maximum requests executing concurrently before the admission
    /// controller sheds.
    pub max_inflight: usize,
    /// Shed when the windowed abort rate exceeds this fraction.
    pub shed_abort_rate: f64,
    /// Shed when serial-mode escalations per second exceed this.
    pub shed_serial_per_sec: f64,
    /// Sampling window for the overload signals.
    pub signal_window: Duration,
    /// Consecutive sheds after which a session's next request bypasses
    /// admission control (starvation escalation).
    pub starvation_sheds: u32,
    /// Master switch for admission control; off = admit everything
    /// (the E10 ablation baseline).
    pub admission: bool,
    /// The STM underneath. Defaults to the Karma contention manager so
    /// repeatedly-aborted requests accumulate priority, to snapshot
    /// reads so audit requests (read-only sweeps over every account)
    /// never abort under transfer churn, to the striped acquisition
    /// clock (DESIGN.md §4.11) so concurrent transfers do not serialize
    /// on one global clock word — striped rather than deferred keeps
    /// leading-stamp raises out of the audit-heavy snapshot read path —
    /// and to depth-1 version chains (DESIGN.md §4.13) so an audit
    /// whose snapshot straddles a transfer commit is served the retired
    /// values instead of gambling on timestamp extension.
    pub stm: StmConfig,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            accounts: 1024,
            initial_balance: 1_000,
            deadline: Duration::from_millis(10),
            max_inflight: 256,
            shed_abort_rate: 0.85,
            shed_serial_per_sec: 50.0,
            signal_window: Duration::from_millis(10),
            starvation_sheds: 8,
            admission: true,
            stm: StmConfig {
                cm: CmPolicy::Karma,
                snapshot_reads: true,
                mv_depth: 1,
                clock_mode: ClockMode::Striped,
                ..StmConfig::default()
            },
        }
    }
}

/// One request to the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Move `amount` from `from` to `to`.
    Transfer {
        /// Source account index.
        from: usize,
        /// Destination account index.
        to: usize,
        /// Amount to move (may drive balances negative; the invariant
        /// is conservation, not solvency).
        amount: i64,
    },
    /// Read one balance.
    Balance {
        /// Account index.
        account: usize,
    },
    /// Sum every balance in one consistent snapshot.
    Audit,
}

/// A successful request's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response {
    /// The transfer committed.
    Transferred,
    /// A single balance.
    Balance(i64),
    /// The consistent total across all accounts.
    Audit(i64),
}

/// Why a request failed. Every variant is actionable by the caller:
/// shed and deadline errors are back-off signals, the rest are bugs in
/// the request itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceError {
    /// Refused at the door by admission control.
    Overloaded(ShedReason),
    /// Admitted, but the per-request deadline passed before commit.
    DeadlineExceeded {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// Admitted, but the retry budget was consumed by conflicts.
    RetryExhausted {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The request names an account outside the ledger.
    NoSuchAccount {
        /// The offending index.
        account: usize,
    },
    /// The heap's slot table is exhausted (terminal).
    HeapFull,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded(reason) => write!(f, "overloaded: {reason}"),
            ServiceError::DeadlineExceeded { attempts } => {
                write!(f, "deadline exceeded after {attempts} attempts")
            }
            ServiceError::RetryExhausted { attempts } => {
                write!(f, "retry budget exhausted after {attempts} attempts")
            }
            ServiceError::NoSuchAccount { account } => write!(f, "no such account {account}"),
            ServiceError::HeapFull => write!(f, "heap slot table exhausted"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// The service: an STM-backed ledger behind an admission controller.
#[derive(Debug)]
pub struct Service {
    stm: Arc<Stm>,
    accounts: Vec<ObjRef>,
    config: ServiceConfig,
    admission: AdmissionController,
}

impl Service {
    /// Builds the ledger and its runtime.
    ///
    /// # Panics
    ///
    /// Panics if `accounts < 2` or the heap cannot hold the ledger.
    pub fn new(config: ServiceConfig) -> Arc<Service> {
        assert!(config.accounts >= 2, "a ledger needs at least two accounts");
        let heap = Arc::new(Heap::new());
        let class = heap.define_class(ClassDesc::with_var_fields("Account", &["balance"]));
        let stm = Arc::new(Stm::with_config(heap.clone(), config.stm));
        let accounts: Vec<ObjRef> = (0..config.accounts)
            .map(|_| {
                let a = heap.alloc(class).expect("heap full building ledger");
                heap.store(a, BALANCE, Word::from_scalar(config.initial_balance));
                a
            })
            .collect();
        let admission = AdmissionController::new(
            stm.clone(),
            config.signal_window,
            config.max_inflight,
            config.shed_abort_rate,
            config.shed_serial_per_sec,
        );
        Arc::new(Service { stm, accounts, config, admission })
    }

    /// Opens a session (cheap; clone-per-logical-client).
    pub fn session(self: &Arc<Service>) -> Session {
        Session { service: self.clone(), consecutive_sheds: 0 }
    }

    /// The configuration this service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The STM underneath (for stats and fault injection).
    pub fn stm(&self) -> &Arc<Stm> {
        &self.stm
    }

    /// The admission controller (for shed counts and signals).
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// The total the conservation invariant demands.
    pub fn expected_total(&self) -> i64 {
        self.config.accounts as i64 * self.config.initial_balance
    }

    /// Audits the ledger outside any deadline or admission path: a
    /// plain `atomically` audit that always completes (serial-mode
    /// escalation bounds it under contention). This is the invariant
    /// checker the fault-injection harness runs continuously.
    pub fn audit_total(&self) -> i64 {
        self.stm.atomically(|tx| {
            let mut sum = 0i64;
            for &account in &self.accounts {
                sum += tx.read(account, BALANCE)?.as_scalar().unwrap_or(0);
            }
            Ok(sum)
        })
    }

    /// Executes one request, optionally bypassing admission control
    /// (`escalated` — the session-starvation path).
    ///
    /// # Errors
    ///
    /// See [`ServiceError`].
    pub fn execute(&self, request: &Request, escalated: bool) -> Result<Response, ServiceError> {
        self.check_bounds(request)?;
        let _guard = if !self.config.admission || escalated {
            self.admission.force_admit()
        } else {
            self.admission.admit().map_err(ServiceError::Overloaded)?
        };
        let result = match *request {
            Request::Transfer { from, to, amount } => {
                let (from, to) = (self.accounts[from], self.accounts[to]);
                self.stm.try_atomically_within(self.config.deadline, |tx| {
                    let fb = tx.read(from, BALANCE)?.as_scalar().unwrap_or(0);
                    let tb = tx.read(to, BALANCE)?.as_scalar().unwrap_or(0);
                    tx.write(from, BALANCE, Word::from_scalar(fb - amount))?;
                    tx.write(to, BALANCE, Word::from_scalar(tb + amount))?;
                    Ok(Response::Transferred)
                })
            }
            Request::Balance { account } => {
                let account = self.accounts[account];
                self.stm.try_atomically_within(self.config.deadline, |tx| {
                    Ok(Response::Balance(tx.read(account, BALANCE)?.as_scalar().unwrap_or(0)))
                })
            }
            Request::Audit => self.stm.try_atomically_within(self.config.deadline, |tx| {
                let mut sum = 0i64;
                for &account in &self.accounts {
                    sum += tx.read(account, BALANCE)?.as_scalar().unwrap_or(0);
                }
                Ok(Response::Audit(sum))
            }),
        };
        result.map_err(|e| match e {
            RetryExhausted::DeadlineExceeded { attempts } => {
                ServiceError::DeadlineExceeded { attempts }
            }
            RetryExhausted::Conflicts { attempts, .. } => ServiceError::RetryExhausted { attempts },
            RetryExhausted::HeapFull => ServiceError::HeapFull,
        })
    }

    fn check_bounds(&self, request: &Request) -> Result<(), ServiceError> {
        let check = |account: usize| {
            if account >= self.accounts.len() {
                Err(ServiceError::NoSuchAccount { account })
            } else {
                Ok(())
            }
        };
        match *request {
            Request::Transfer { from, to, .. } => {
                check(from)?;
                check(to)
            }
            Request::Balance { account } => check(account),
            Request::Audit => Ok(()),
        }
    }
}

/// A client handle: one logical connection's worth of state.
#[derive(Debug)]
pub struct Session {
    service: Arc<Service>,
    /// Consecutive [`ServiceError::Overloaded`] results; reaching
    /// `starvation_sheds` escalates the next call past admission.
    consecutive_sheds: u32,
}

impl Session {
    /// Issues one request, applying this session's starvation
    /// escalation: after `starvation_sheds` consecutive refusals the
    /// next request is admitted unconditionally.
    ///
    /// # Errors
    ///
    /// See [`ServiceError`].
    pub fn call(&mut self, request: &Request) -> Result<Response, ServiceError> {
        let escalated = self.consecutive_sheds >= self.service.config.starvation_sheds;
        let result = self.service.execute(request, escalated);
        match result {
            Err(ServiceError::Overloaded(_)) => {
                self.consecutive_sheds = self.consecutive_sheds.saturating_add(1);
            }
            _ => self.consecutive_sheds = 0,
        }
        result
    }

    /// True if this session's next call will bypass admission control.
    pub fn is_escalated(&self) -> bool {
        self.consecutive_sheds >= self.service.config.starvation_sheds
    }

    /// The service behind this session.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Arc<Service> {
        Service::new(ServiceConfig {
            accounts: 8,
            initial_balance: 100,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn transfers_conserve_the_total() {
        let svc = tiny();
        let mut session = svc.session();
        for i in 0..8 {
            session
                .call(&Request::Transfer { from: i % 8, to: (i + 3) % 8, amount: 10 + i as i64 })
                .unwrap();
        }
        assert_eq!(svc.audit_total(), 800);
        assert_eq!(session.call(&Request::Audit), Ok(Response::Audit(800)));
    }

    #[test]
    fn balance_reads_see_committed_transfers() {
        let svc = tiny();
        let mut session = svc.session();
        session.call(&Request::Transfer { from: 0, to: 1, amount: 25 }).unwrap();
        assert_eq!(session.call(&Request::Balance { account: 0 }), Ok(Response::Balance(75)));
        assert_eq!(session.call(&Request::Balance { account: 1 }), Ok(Response::Balance(125)));
    }

    #[test]
    fn out_of_range_accounts_are_typed_errors() {
        let svc = tiny();
        let mut session = svc.session();
        assert_eq!(
            session.call(&Request::Balance { account: 99 }),
            Err(ServiceError::NoSuchAccount { account: 99 })
        );
        assert_eq!(
            session.call(&Request::Transfer { from: 0, to: 99, amount: 1 }),
            Err(ServiceError::NoSuchAccount { account: 99 })
        );
    }

    #[test]
    fn deadline_surfaces_as_typed_error_under_a_stall() {
        use omt_stm::failpoint::{sites, FailAction, Trigger};
        let svc = Service::new(ServiceConfig {
            accounts: 8,
            deadline: Duration::from_millis(1),
            ..ServiceConfig::default()
        });
        // Stall every acquisition, then doom every commit: the request
        // burns its 1ms budget stalled and can never commit, so the
        // deadline must end the loop instead of retrying forever.
        svc.stm().failpoints().set(
            sites::OPEN_UPDATE_AFTER_ACQUIRE,
            FailAction::Delay(2_000_000),
            Trigger::Always,
        );
        svc.stm().failpoints().set(
            sites::COMMIT_BEFORE_VALIDATE,
            FailAction::Abort,
            Trigger::Always,
        );
        let mut session = svc.session();
        let started = std::time::Instant::now();
        let result = session.call(&Request::Transfer { from: 0, to: 1, amount: 5 });
        svc.stm().failpoints().reset();
        match result {
            Err(ServiceError::DeadlineExceeded { attempts }) => {
                assert!(attempts >= 1, "at least one attempt ran");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // The give-up is prompt (deadline + a bounded number of
        // stalled attempts), not a retry-forever hang.
        assert!(started.elapsed() < Duration::from_secs(30));
        // Nothing committed, nothing torn.
        assert_eq!(svc.audit_total(), svc.expected_total());
    }

    #[test]
    fn starved_session_escalates_past_admission() {
        let svc = Service::new(ServiceConfig {
            accounts: 4,
            max_inflight: 1,
            starvation_sheds: 3,
            ..ServiceConfig::default()
        });
        // Hold the only in-flight slot so every admit sheds.
        let _slot = svc.admission().admit().unwrap();
        let mut session = svc.session();
        for _ in 0..3 {
            assert!(matches!(
                session.call(&Request::Balance { account: 0 }),
                Err(ServiceError::Overloaded(_))
            ));
        }
        assert!(session.is_escalated());
        // The fourth call bypasses the (still-full) controller.
        assert_eq!(session.call(&Request::Balance { account: 0 }), Ok(Response::Balance(1_000)));
        assert!(!session.is_escalated(), "success resets the starvation counter");
    }

    #[test]
    fn admission_off_admits_through_a_full_cap() {
        let svc = Service::new(ServiceConfig {
            accounts: 4,
            max_inflight: 1,
            admission: false,
            ..ServiceConfig::default()
        });
        let _slot = svc.admission().admit().unwrap();
        let mut session = svc.session();
        assert!(session.call(&Request::Balance { account: 1 }).is_ok());
    }
}
