//! AST pretty-printer: renders a [`Program`] back to parseable TxIL.
//!
//! Used for diagnostics, golden tests, and the print→parse→print
//! fixpoint property (a cheap syntactic round-trip check).

use std::fmt::Write as _;

use crate::ast::*;

/// Renders `program` as TxIL source that parses back to an equivalent
/// AST.
///
/// # Examples
///
/// ```
/// use omt_lang::{parse, pretty};
///
/// let program = parse("fn f(x:int)->int{return x+1;}")?;
/// let text = pretty(&program);
/// assert_eq!(text.trim(), "fn f(x: int) -> int {\n    return x + 1;\n}");
/// // Fixpoint: printing the reparse gives the same text.
/// assert_eq!(pretty(&parse(&text)?), text);
/// # Ok::<(), omt_lang::Diagnostics>(())
/// ```
pub fn pretty(program: &Program) -> String {
    let mut out = String::new();
    for class in &program.classes {
        let _ = writeln!(out, "class {} {{", class.name);
        for field in &class.fields {
            let _ = writeln!(
                out,
                "    {} {}: {};",
                if field.mutable { "var" } else { "val" },
                field.name,
                type_text(&field.ty)
            );
        }
        let _ = writeln!(out, "}}");
    }
    for (i, function) in program.functions.iter().enumerate() {
        if i > 0 || !program.classes.is_empty() {
            let _ = writeln!(out);
        }
        let params: Vec<String> =
            function.params.iter().map(|p| format!("{}: {}", p.name, type_text(&p.ty))).collect();
        let ret = match &function.ret {
            Some(ty) => format!(" -> {}", type_text(ty)),
            None => String::new(),
        };
        let _ = writeln!(out, "fn {}({}){ret} {{", function.name, params.join(", "));
        print_block_body(&mut out, &function.body, 1);
        let _ = writeln!(out, "}}");
    }
    out
}

fn type_text(ty: &TypeExpr) -> String {
    match &ty.kind {
        TypeExprKind::Int => "int".to_owned(),
        TypeExprKind::Bool => "bool".to_owned(),
        TypeExprKind::Class(name) => name.clone(),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn print_block_body(out: &mut String, block: &Block, depth: usize) {
    for stmt in &block.stmts {
        print_stmt(out, stmt, depth);
    }
}

fn print_stmt(out: &mut String, stmt: &Stmt, depth: usize) {
    indent(out, depth);
    match &stmt.kind {
        StmtKind::Let { name, ty, init } => {
            match ty {
                Some(ty) => {
                    let _ = writeln!(out, "let {name}: {} = {};", type_text(ty), expr_text(init));
                }
                None => {
                    let _ = writeln!(out, "let {name} = {};", expr_text(init));
                }
            };
        }
        StmtKind::Assign { target, value } => {
            let _ = writeln!(out, "{} = {};", expr_text(target), expr_text(value));
        }
        StmtKind::If { cond, then_blk, else_blk } => {
            let _ = writeln!(out, "if {} {{", expr_text(cond));
            print_block_body(out, then_blk, depth + 1);
            indent(out, depth);
            match else_blk {
                Some(e) => {
                    let _ = writeln!(out, "}} else {{");
                    print_block_body(out, e, depth + 1);
                    indent(out, depth);
                    let _ = writeln!(out, "}}");
                }
                None => {
                    let _ = writeln!(out, "}}");
                }
            }
        }
        StmtKind::While { cond, body } => {
            let _ = writeln!(out, "while {} {{", expr_text(cond));
            print_block_body(out, body, depth + 1);
            indent(out, depth);
            let _ = writeln!(out, "}}");
        }
        StmtKind::Atomic { body } => {
            let _ = writeln!(out, "atomic {{");
            print_block_body(out, body, depth + 1);
            indent(out, depth);
            let _ = writeln!(out, "}}");
        }
        StmtKind::Return { value } => match value {
            Some(v) => {
                let _ = writeln!(out, "return {};", expr_text(v));
            }
            None => {
                let _ = writeln!(out, "return;");
            }
        },
        StmtKind::Expr { expr } => {
            let _ = writeln!(out, "{};", expr_text(expr));
        }
    }
}

/// Renders an expression. Parenthesizes every compound subexpression,
/// which keeps the printer trivially correct (and the fixpoint property
/// exact) at the cost of some extra parentheses.
fn expr_text(expr: &Expr) -> String {
    match &expr.kind {
        ExprKind::Int(v) => v.to_string(),
        ExprKind::Bool(b) => b.to_string(),
        ExprKind::Null => "null".to_owned(),
        ExprKind::Var(name) => name.clone(),
        ExprKind::Field { obj, field } => format!("{}.{}", subexpr_text(obj), field),
        ExprKind::Unary { op, expr } => {
            let symbol = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("{symbol}{}", subexpr_text(expr))
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let symbol = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "&&",
                BinOp::Or => "||",
            };
            format!("{} {symbol} {}", subexpr_text(lhs), subexpr_text(rhs))
        }
        ExprKind::Call { callee, args } => {
            let args: Vec<String> = args.iter().map(expr_text).collect();
            format!("{callee}({})", args.join(", "))
        }
        ExprKind::New { class, args } => {
            let args: Vec<String> = args.iter().map(expr_text).collect();
            format!("new {class}({})", args.join(", "))
        }
    }
}

/// Like [`expr_text`] but wraps binaries/unaries in parentheses so the
/// reparse reproduces the original tree shape regardless of precedence.
fn subexpr_text(expr: &Expr) -> String {
    match &expr.kind {
        ExprKind::Binary { .. } | ExprKind::Unary { .. } => format!("({})", expr_text(expr)),
        _ => expr_text(expr),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn fixpoint(src: &str) {
        let first = pretty(&parse(src).expect("parse original"));
        let second = pretty(
            &parse(&first)
                .unwrap_or_else(|e| panic!("printed program failed to parse: {e}\n---\n{first}")),
        );
        assert_eq!(first, second, "print→parse→print not a fixpoint");
    }

    #[test]
    fn simple_function_round_trips() {
        fixpoint("fn f(x: int) -> int { return x * 2 + 1; }");
    }

    #[test]
    fn classes_and_controls_round_trip() {
        fixpoint(
            "class Node { val key: int; var next: Node; }
             fn sum(h: Node, limit: int) -> int {
                 let t = 0;
                 atomic {
                     let p = h;
                     while p != null && t < limit {
                         if p.key > 0 { t = t + p.key; } else { t = t - 1; }
                         p = p.next;
                     }
                 }
                 return t;
             }",
        );
    }

    #[test]
    fn precedence_preserved_through_parentheses() {
        let program = parse("fn f(a: int, b: int, c: int) -> int { return a + b * c; }").unwrap();
        let text = pretty(&program);
        assert!(text.contains("a + (b * c)"), "got: {text}");
        fixpoint("fn f(a: int, b: int, c: int) -> int { return (a + b) * c; }");
    }

    #[test]
    fn else_if_round_trips() {
        fixpoint(
            "fn f(x: int) -> int {
                 if x < 0 { return -1; } else if x == 0 { return 0; } else { return 1; }
             }",
        );
    }

    #[test]
    fn calls_and_new_round_trip() {
        fixpoint(
            "class P { var x: int; var y: int; }
             fn g(p: P) -> int { return p.x; }
             fn f() -> int { let p = new P(1, 2 + 3); return g(p); }",
        );
    }
}
