//! # omt-lang — TxIL: a small transactional imperative language
//!
//! The PLDI 2006 paper implements its STM inside the Bartok C#
//! compiler; the programs it optimizes are ordinary object-oriented
//! code with `atomic` blocks. TxIL is the equivalent surface for this
//! reproduction: classes with `var`/`val` fields, functions, loops, and
//! `atomic { ... }` regions.
//!
//! The pipeline is the classical one:
//!
//! 1. [`lex`] — tokens with spans;
//! 2. [`parse`] — AST ([`Program`]);
//! 3. [`check`] — class/function tables and per-expression types
//!    ([`TypeInfo`]), which downstream barrier insertion consumes
//!    (immutable `val` fields license barrier elision).
//!
//! Lowering to IR and the optimization passes live in `omt-ir` and
//! `omt-opt`.
//!
//! # Examples
//!
//! ```
//! use omt_lang::{parse, check};
//!
//! let source = "
//!     class Account { var balance: int; }
//!     fn deposit(a: Account, amount: int) {
//!         atomic { a.balance = a.balance + amount; }
//!     }
//! ";
//! let program = parse(source)?;
//! let info = check(&program)?;
//! assert_eq!(info.classes.classes[0].name, "Account");
//! # Ok::<(), omt_lang::Diagnostics>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
mod diag;
mod lexer;
mod parser;
mod printer;
mod token;
mod types;

pub use ast::{
    BinOp, Block, ClassDecl, Expr, ExprId, ExprKind, FieldDecl, FnDecl, Param, Program, Stmt,
    StmtKind, TypeExpr, TypeExprKind, UnOp,
};
pub use diag::{Diagnostic, Diagnostics};
pub use lexer::lex;
pub use parser::parse;
pub use printer::pretty;
pub use token::{Span, Token, TokenKind};
pub use types::{check, ClassInfo, ClassTable, FieldInfo, FnSig, FnTable, Type, TypeInfo};
