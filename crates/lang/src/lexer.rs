//! The TxIL lexer.

use crate::diag::Diagnostics;
use crate::token::{Span, Token, TokenKind};

/// Tokenizes `source` into a token stream ending in
/// [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns the collected diagnostics if any character cannot be lexed
/// (invalid characters, unterminated comments, oversized integers).
///
/// # Examples
///
/// ```
/// use omt_lang::lex;
///
/// let tokens = lex("atomic { x = x + 1; }")?;
/// assert_eq!(tokens.len(), 10); // 9 tokens + Eof
/// # Ok::<(), omt_lang::Diagnostics>(())
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>, Diagnostics> {
    let mut lexer = Lexer { source, bytes: source.as_bytes(), pos: 0, diags: Diagnostics::new() };
    let mut tokens = Vec::new();
    loop {
        let token = lexer.next_token();
        let done = token.kind == TokenKind::Eof;
        tokens.push(token);
        if done {
            break;
        }
    }
    lexer.diags.into_result(tokens)
}

struct Lexer<'s> {
    source: &'s str,
    bytes: &'s [u8],
    pos: usize,
    diags: Diagnostics,
}

impl Lexer<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos as u32;
                    self.pos += 2;
                    let mut closed = false;
                    while let Some(b) = self.bump() {
                        if b == b'*' && self.peek() == Some(b'/') {
                            self.pos += 1;
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        self.diags
                            .error("unterminated block comment", Span::new(start, self.pos as u32));
                    }
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self) -> Token {
        self.skip_trivia();
        let start = self.pos as u32;
        let Some(b) = self.bump() else {
            return Token { kind: TokenKind::Eof, span: Span::new(start, start) };
        };

        let kind = match b {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b',' => TokenKind::Comma,
            b';' => TokenKind::Semi,
            b':' => TokenKind::Colon,
            b'.' => TokenKind::Dot,
            b'+' => TokenKind::Plus,
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'%' => TokenKind::Percent,
            b'-' => {
                if self.peek() == Some(b'>') {
                    self.pos += 1;
                    TokenKind::Arrow
                } else {
                    TokenKind::Minus
                }
            }
            b'=' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::EqEq
                } else {
                    TokenKind::Assign
                }
            }
            b'!' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::NotEq
                } else {
                    TokenKind::Not
                }
            }
            b'<' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            b'>' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.pos += 1;
                    TokenKind::AndAnd
                } else {
                    self.diags.error("expected `&&`", Span::new(start, self.pos as u32));
                    TokenKind::AndAnd
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.pos += 1;
                    TokenKind::OrOr
                } else {
                    self.diags.error("expected `||`", Span::new(start, self.pos as u32));
                    TokenKind::OrOr
                }
            }
            b'0'..=b'9' => {
                while matches!(self.peek(), Some(b'0'..=b'9') | Some(b'_')) {
                    self.pos += 1;
                }
                let text: String =
                    self.source[start as usize..self.pos].chars().filter(|c| *c != '_').collect();
                match text.parse::<i64>() {
                    Ok(v) if v <= (i64::MAX >> 1) => TokenKind::Int(v),
                    _ => {
                        self.diags.error(
                            format!("integer literal `{text}` exceeds 63 bits"),
                            Span::new(start, self.pos as u32),
                        );
                        TokenKind::Int(0)
                    }
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                while matches!(
                    self.peek(),
                    Some(b'a'..=b'z') | Some(b'A'..=b'Z') | Some(b'0'..=b'9') | Some(b'_')
                ) {
                    self.pos += 1;
                }
                keyword_or_ident(&self.source[start as usize..self.pos])
            }
            other => {
                self.diags.error(
                    format!("unexpected character `{}`", other as char),
                    Span::new(start, self.pos as u32),
                );
                return self.next_token();
            }
        };
        Token { kind, span: Span::new(start, self.pos as u32) }
    }
}

fn keyword_or_ident(text: &str) -> TokenKind {
    match text {
        "class" => TokenKind::Class,
        "fn" => TokenKind::Fn,
        "var" => TokenKind::Var,
        "val" => TokenKind::Val,
        "let" => TokenKind::Let,
        "if" => TokenKind::If,
        "else" => TokenKind::Else,
        "while" => TokenKind::While,
        "atomic" => TokenKind::Atomic,
        "return" => TokenKind::Return,
        "new" => TokenKind::New,
        "true" => TokenKind::True,
        "false" => TokenKind::False,
        "null" => TokenKind::Null,
        "int" => TokenKind::IntTy,
        "bool" => TokenKind::BoolTy,
        _ => TokenKind::Ident(text.to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        lex(source).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_all_punctuation() {
        use TokenKind::*;
        assert_eq!(
            kinds("( ) { } , ; : . -> = == != < <= > >= + - * / % ! && ||"),
            vec![
                LParen, RParen, LBrace, RBrace, Comma, Semi, Colon, Dot, Arrow, Assign, EqEq,
                NotEq, Lt, Le, Gt, Ge, Plus, Minus, Star, Slash, Percent, Not, AndAnd, OrOr, Eof
            ]
        );
    }

    #[test]
    fn keywords_vs_identifiers() {
        use TokenKind::*;
        assert_eq!(
            kinds("atomic atomics class classy"),
            vec![Atomic, Ident("atomics".into()), Class, Ident("classy".into()), Eof]
        );
    }

    #[test]
    fn integers_with_underscores() {
        assert_eq!(kinds("1_000_000"), vec![TokenKind::Int(1_000_000), TokenKind::Eof]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // line\n b /* block\n still */ c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        let err = lex("a /* never closed").unwrap_err();
        assert!(err.errors[0].message.contains("unterminated"));
    }

    #[test]
    fn oversized_integer_is_an_error() {
        let err = lex("9223372036854775807").unwrap_err();
        assert!(err.errors[0].message.contains("exceeds 63 bits"));
    }

    #[test]
    fn invalid_character_is_an_error() {
        let err = lex("a # b").unwrap_err();
        assert!(err.errors[0].message.contains("unexpected character"));
    }

    #[test]
    fn spans_cover_tokens() {
        let tokens = lex("let xy = 10;").unwrap();
        assert_eq!(tokens[1].span, Span::new(4, 6)); // xy
        assert_eq!(tokens[3].span, Span::new(9, 11)); // 10
    }
}
