//! Recursive-descent parser for TxIL.

use crate::ast::*;
use crate::diag::Diagnostics;
use crate::lexer::lex;
use crate::token::{Span, Token, TokenKind};

/// Parses a TxIL source file into a [`Program`].
///
/// # Errors
///
/// Returns all lexical and syntax errors found; the parser recovers at
/// statement and item boundaries so multiple errors can be reported.
///
/// # Examples
///
/// ```
/// use omt_lang::parse;
///
/// let program = parse("fn main() -> int { return 42; }")?;
/// assert_eq!(program.functions[0].name, "main");
/// # Ok::<(), omt_lang::Diagnostics>(())
/// ```
pub fn parse(source: &str) -> Result<Program, Diagnostics> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0, diags: Diagnostics::new(), next_expr_id: 0 };
    let program = parser.program();
    parser.diags.into_result(program)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    diags: Diagnostics,
    next_expr_id: u32,
}

/// Internal sentinel: an error was reported; recover at a sync point.
struct Recover;

type PResult<T> = Result<T, Recover>;

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> PResult<Span> {
        if self.peek() == &kind {
            let span = self.peek_span();
            self.bump();
            Ok(span)
        } else {
            self.diags.error(
                format!("expected {}, found {}", kind.describe(), self.peek().describe()),
                self.peek_span(),
            );
            Err(Recover)
        }
    }

    fn expect_ident(&mut self) -> PResult<(String, Span)> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.peek_span();
                self.bump();
                Ok((name, span))
            }
            other => {
                self.diags.error(
                    format!("expected identifier, found {}", other.describe()),
                    self.peek_span(),
                );
                Err(Recover)
            }
        }
    }

    fn fresh_id(&mut self) -> ExprId {
        let id = ExprId(self.next_expr_id);
        self.next_expr_id += 1;
        id
    }

    /// Skips tokens until a likely item/statement boundary.
    fn sync_to(&mut self, stoppers: &[TokenKind]) {
        loop {
            let kind = self.peek();
            if kind == &TokenKind::Eof || stoppers.contains(kind) {
                break;
            }
            if kind == &TokenKind::Semi {
                self.bump();
                break;
            }
            self.bump();
        }
    }

    fn program(&mut self) -> Program {
        let mut classes = Vec::new();
        let mut functions = Vec::new();
        while self.peek() != &TokenKind::Eof {
            match self.peek() {
                TokenKind::Class => match self.class_decl() {
                    Ok(c) => classes.push(c),
                    Err(Recover) => self.sync_to(&[TokenKind::Class, TokenKind::Fn]),
                },
                TokenKind::Fn => match self.fn_decl() {
                    Ok(f) => functions.push(f),
                    Err(Recover) => self.sync_to(&[TokenKind::Class, TokenKind::Fn]),
                },
                other => {
                    self.diags.error(
                        format!("expected `class` or `fn`, found {}", other.describe()),
                        self.peek_span(),
                    );
                    self.bump();
                    self.sync_to(&[TokenKind::Class, TokenKind::Fn]);
                }
            }
        }
        Program { classes, functions }
    }

    fn class_decl(&mut self) -> PResult<ClassDecl> {
        let start = self.expect(TokenKind::Class)?;
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.peek() == &TokenKind::Eof {
                self.diags.error("unclosed class body", start);
                return Err(Recover);
            }
            let field_start = self.peek_span();
            let mutable = match self.bump() {
                TokenKind::Var => true,
                TokenKind::Val => false,
                other => {
                    self.diags.error(
                        format!("expected `var` or `val`, found {}", other.describe()),
                        field_start,
                    );
                    return Err(Recover);
                }
            };
            let (field_name, _) = self.expect_ident()?;
            self.expect(TokenKind::Colon)?;
            let ty = self.type_expr()?;
            let end = self.expect(TokenKind::Semi)?;
            fields.push(FieldDecl { name: field_name, mutable, ty, span: field_start.to(end) });
        }
        let span = start.to(self.prev_span());
        Ok(ClassDecl { name, fields, span })
    }

    fn fn_decl(&mut self) -> PResult<FnDecl> {
        let start = self.expect(TokenKind::Fn)?;
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let (pname, pspan) = self.expect_ident()?;
                self.expect(TokenKind::Colon)?;
                let ty = self.type_expr()?;
                params.push(Param { name: pname, span: pspan.to(ty.span), ty });
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(TokenKind::Comma)?;
            }
        }
        let ret = if self.eat(&TokenKind::Arrow) { Some(self.type_expr()?) } else { None };
        let body = self.block()?;
        let span = start.to(body.span);
        Ok(FnDecl { name, params, ret, body, span })
    }

    fn type_expr(&mut self) -> PResult<TypeExpr> {
        let span = self.peek_span();
        let kind = match self.bump() {
            TokenKind::IntTy => TypeExprKind::Int,
            TokenKind::BoolTy => TypeExprKind::Bool,
            TokenKind::Ident(name) => TypeExprKind::Class(name),
            other => {
                self.diags.error(format!("expected a type, found {}", other.describe()), span);
                return Err(Recover);
            }
        };
        Ok(TypeExpr { kind, span })
    }

    fn block(&mut self) -> PResult<Block> {
        let start = self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.peek() == &TokenKind::Eof {
                self.diags.error("unclosed block", start);
                return Err(Recover);
            }
            match self.stmt() {
                Ok(s) => stmts.push(s),
                Err(Recover) => self.sync_to(&[TokenKind::RBrace]),
            }
        }
        Ok(Block { stmts, span: start.to(self.prev_span()) })
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        let start = self.peek_span();
        match self.peek() {
            TokenKind::Let => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                let ty = if self.eat(&TokenKind::Colon) { Some(self.type_expr()?) } else { None };
                self.expect(TokenKind::Assign)?;
                let init = self.expr()?;
                let end = self.expect(TokenKind::Semi)?;
                Ok(Stmt { kind: StmtKind::Let { name, ty, init }, span: start.to(end) })
            }
            TokenKind::If => {
                self.bump();
                let cond = self.expr()?;
                let then_blk = self.block()?;
                let else_blk = if self.eat(&TokenKind::Else) {
                    if self.peek() == &TokenKind::If {
                        // else-if: wrap the nested if in a synthetic block.
                        let nested = self.stmt()?;
                        let span = nested.span;
                        Some(Block { stmts: vec![nested], span })
                    } else {
                        Some(self.block()?)
                    }
                } else {
                    None
                };
                let span = start.to(self.prev_span());
                Ok(Stmt { kind: StmtKind::If { cond, then_blk, else_blk }, span })
            }
            TokenKind::While => {
                self.bump();
                let cond = self.expr()?;
                let body = self.block()?;
                let span = start.to(body.span);
                Ok(Stmt { kind: StmtKind::While { cond, body }, span })
            }
            TokenKind::Atomic => {
                self.bump();
                let body = self.block()?;
                let span = start.to(body.span);
                Ok(Stmt { kind: StmtKind::Atomic { body }, span })
            }
            TokenKind::Return => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semi { None } else { Some(self.expr()?) };
                let end = self.expect(TokenKind::Semi)?;
                Ok(Stmt { kind: StmtKind::Return { value }, span: start.to(end) })
            }
            _ => {
                let expr = self.expr()?;
                if self.eat(&TokenKind::Assign) {
                    if !matches!(expr.kind, ExprKind::Var(_) | ExprKind::Field { .. }) {
                        self.diags
                            .error("assignment target must be a variable or field", expr.span);
                        return Err(Recover);
                    }
                    let value = self.expr()?;
                    let end = self.expect(TokenKind::Semi)?;
                    Ok(Stmt { kind: StmtKind::Assign { target: expr, value }, span: start.to(end) })
                } else {
                    let end = self.expect(TokenKind::Semi)?;
                    Ok(Stmt { kind: StmtKind::Expr { expr }, span: start.to(end) })
                }
            }
        }
    }

    fn expr(&mut self) -> PResult<Expr> {
        self.binary_expr(0)
    }

    fn binary_expr(&mut self, min_bp: u8) -> PResult<Expr> {
        let mut lhs = self.unary_expr()?;
        while let Some((op, bp)) = binop_of(self.peek()) {
            if bp < min_bp {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(bp + 1)?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                id: self.fresh_id(),
                kind: ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        let start = self.peek_span();
        let op = match self.peek() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Not => Some(UnOp::Not),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let expr = self.unary_expr()?;
            let span = start.to(expr.span);
            return Ok(Expr {
                id: self.fresh_id(),
                kind: ExprKind::Unary { op, expr: Box::new(expr) },
                span,
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> PResult<Expr> {
        let mut expr = self.primary_expr()?;
        while self.eat(&TokenKind::Dot) {
            let (field, fspan) = self.expect_ident()?;
            let span = expr.span.to(fspan);
            expr = Expr {
                id: self.fresh_id(),
                kind: ExprKind::Field { obj: Box::new(expr), field },
                span,
            };
        }
        Ok(expr)
    }

    fn primary_expr(&mut self) -> PResult<Expr> {
        let start = self.peek_span();
        let kind = match self.bump() {
            TokenKind::Int(v) => ExprKind::Int(v),
            TokenKind::True => ExprKind::Bool(true),
            TokenKind::False => ExprKind::Bool(false),
            TokenKind::Null => ExprKind::Null,
            TokenKind::New => {
                let (class, _) = self.expect_ident()?;
                self.expect(TokenKind::LParen)?;
                let args = self.call_args()?;
                ExprKind::New { class, args }
            }
            TokenKind::Ident(name) => {
                if self.eat(&TokenKind::LParen) {
                    let args = self.call_args()?;
                    ExprKind::Call { callee: name, args }
                } else {
                    ExprKind::Var(name)
                }
            }
            TokenKind::LParen => {
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                return Ok(inner);
            }
            other => {
                self.diags
                    .error(format!("expected an expression, found {}", other.describe()), start);
                return Err(Recover);
            }
        };
        Ok(Expr { id: self.fresh_id(), kind, span: start.to(self.prev_span()) })
    }

    fn call_args(&mut self) -> PResult<Vec<Expr>> {
        let mut args = Vec::new();
        if self.eat(&TokenKind::RParen) {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if self.eat(&TokenKind::RParen) {
                return Ok(args);
            }
            self.expect(TokenKind::Comma)?;
        }
    }
}

/// Operator → (op, binding power). Higher binds tighter.
fn binop_of(kind: &TokenKind) -> Option<(BinOp, u8)> {
    Some(match kind {
        TokenKind::OrOr => (BinOp::Or, 1),
        TokenKind::AndAnd => (BinOp::And, 2),
        TokenKind::EqEq => (BinOp::Eq, 3),
        TokenKind::NotEq => (BinOp::Ne, 3),
        TokenKind::Lt => (BinOp::Lt, 4),
        TokenKind::Le => (BinOp::Le, 4),
        TokenKind::Gt => (BinOp::Gt, 4),
        TokenKind::Ge => (BinOp::Ge, 4),
        TokenKind::Plus => (BinOp::Add, 5),
        TokenKind::Minus => (BinOp::Sub, 5),
        TokenKind::Star => (BinOp::Mul, 6),
        TokenKind::Slash => (BinOp::Div, 6),
        TokenKind::Percent => (BinOp::Mod, 6),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_class_and_fn() {
        let src = "
            class Node { val key: int; var next: Node; }
            fn id(x: int) -> int { return x; }
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.classes.len(), 1);
        assert_eq!(p.classes[0].fields.len(), 2);
        assert!(!p.classes[0].fields[0].mutable);
        assert!(p.classes[0].fields[1].mutable);
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].params.len(), 1);
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("fn f() -> int { return 1 + 2 * 3; }").unwrap();
        let StmtKind::Return { value: Some(e) } = &p.functions[0].body.stmts[0].kind else {
            panic!("expected return");
        };
        let ExprKind::Binary { op: BinOp::Add, rhs, .. } = &e.kind else {
            panic!("expected + at top, got {:?}", e.kind);
        };
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_atomic_while_field_chain() {
        let src = "
            class N { var next: N; var v: int; }
            fn sum(h: N) -> int {
                let t = 0;
                atomic {
                    let n = h;
                    while n != null {
                        t = t + n.v;
                        n = n.next;
                    }
                }
                return t;
            }
        ";
        let p = parse(src).unwrap();
        let body = &p.functions[0].body;
        assert!(matches!(body.stmts[1].kind, StmtKind::Atomic { .. }));
    }

    #[test]
    fn else_if_chains() {
        let src = "fn f(x: int) -> int {
            if x < 0 { return 0 - 1; } else if x == 0 { return 0; } else { return 1; }
        }";
        let p = parse(src).unwrap();
        let StmtKind::If { else_blk: Some(b), .. } = &p.functions[0].body.stmts[0].kind else {
            panic!("expected if");
        };
        assert!(matches!(b.stmts[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn field_assignment_target() {
        let p = parse("fn f(n: N) { n.next.v = 3; } class N { var next: N; var v: int; }").unwrap();
        let StmtKind::Assign { target, .. } = &p.functions[0].body.stmts[0].kind else {
            panic!("expected assign");
        };
        assert!(matches!(target.kind, ExprKind::Field { .. }));
    }

    #[test]
    fn invalid_assignment_target_rejected() {
        let err = parse("fn f() { 1 + 2 = 3; }").unwrap_err();
        assert!(err.errors[0].message.contains("assignment target"));
    }

    #[test]
    fn reports_multiple_errors_with_recovery() {
        let err = parse("fn f() { let = 3; let y = ; } fn g(,) { }").unwrap_err();
        assert!(err.len() >= 2, "expected multiple diagnostics, got {err}");
    }

    #[test]
    fn new_with_and_without_args() {
        let p = parse(
            "class P { var x: int; var y: int; }
             fn f() { let a = new P(); let b = new P(1, 2); }",
        )
        .unwrap();
        let StmtKind::Let { init, .. } = &p.functions[0].body.stmts[1].kind else { panic!() };
        let ExprKind::New { args, .. } = &init.kind else { panic!() };
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn expr_ids_are_unique() {
        let p = parse("fn f() -> int { return 1 + 2 + 3 + 4; }").unwrap();
        let mut ids = Vec::new();
        fn walk(e: &Expr, ids: &mut Vec<u32>) {
            ids.push(e.id.0);
            if let ExprKind::Binary { lhs, rhs, .. } = &e.kind {
                walk(lhs, ids);
                walk(rhs, ids);
            }
        }
        let StmtKind::Return { value: Some(e) } = &p.functions[0].body.stmts[0].kind else {
            panic!()
        };
        walk(e, &mut ids);
        let len = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), len, "duplicate expression ids");
    }

    #[test]
    fn unclosed_block_is_an_error() {
        assert!(parse("fn f() { let x = 1;").is_err());
    }
}
