//! TxIL tokens and source spans.

use std::fmt;

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span.
    pub fn new(start: u32, end: u32) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// Computes 1-based (line, column) for the span start.
    pub fn line_col(self, source: &str) -> (u32, u32) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in source.char_indices() {
            if i as u32 >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// The kinds of TxIL tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Literals and identifiers.
    /// Integer literal (value fits 63 bits; checked by the lexer).
    Int(i64),
    /// An identifier.
    Ident(String),

    // Keywords.
    /// `class`
    Class,
    /// `fn`
    Fn,
    /// `var`
    Var,
    /// `val`
    Val,
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `atomic`
    Atomic,
    /// `return`
    Return,
    /// `new`
    New,
    /// `true`
    True,
    /// `false`
    False,
    /// `null`
    Null,
    /// `int` type
    IntTy,
    /// `bool` type
    BoolTy,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Not,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable name for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Eof => "end of input".to_owned(),
            other => format!("`{}`", other.lexeme()),
        }
    }

    fn lexeme(&self) -> &'static str {
        match self {
            TokenKind::Class => "class",
            TokenKind::Fn => "fn",
            TokenKind::Var => "var",
            TokenKind::Val => "val",
            TokenKind::Let => "let",
            TokenKind::If => "if",
            TokenKind::Else => "else",
            TokenKind::While => "while",
            TokenKind::Atomic => "atomic",
            TokenKind::Return => "return",
            TokenKind::New => "new",
            TokenKind::True => "true",
            TokenKind::False => "false",
            TokenKind::Null => "null",
            TokenKind::IntTy => "int",
            TokenKind::BoolTy => "bool",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::Comma => ",",
            TokenKind::Semi => ";",
            TokenKind::Colon => ":",
            TokenKind::Dot => ".",
            TokenKind::Arrow => "->",
            TokenKind::Assign => "=",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Not => "!",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::Int(_) | TokenKind::Ident(_) | TokenKind::Eof => unreachable!(),
        }
    }
}

/// One token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(b.to(a), Span::new(2, 9));
    }

    #[test]
    fn line_col() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 5).line_col(src), (2, 2));
        assert_eq!(Span::new(6, 7).line_col(src), (3, 1));
    }

    #[test]
    fn describe_tokens() {
        assert_eq!(TokenKind::Atomic.describe(), "`atomic`");
        assert_eq!(TokenKind::Int(5).describe(), "integer `5`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
    }
}
