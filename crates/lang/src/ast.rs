//! The TxIL abstract syntax tree.
//!
//! TxIL is a deliberately small imperative language with classes and
//! `atomic` blocks — just enough surface to express the benchmark
//! programs of the PLDI 2006 evaluation and to give the optimizer real
//! control flow to work on:
//!
//! ```text
//! class Node { val key: int; var next: Node; }
//!
//! fn sum(head: Node) -> int {
//!     let total = 0;
//!     atomic {
//!         let n = head;
//!         while n != null {
//!             total = total + n.key;
//!             n = n.next;
//!         }
//!     }
//!     return total;
//! }
//! ```

use crate::token::Span;

/// Uniquely identifies an expression node; the type checker's results
/// are indexed by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

/// A complete source file.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Class declarations, in source order.
    pub classes: Vec<ClassDecl>,
    /// Function declarations, in source order.
    pub functions: Vec<FnDecl>,
}

/// `class Name { fields }`
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    /// The class name.
    pub name: String,
    /// Field declarations, in layout order.
    pub fields: Vec<FieldDecl>,
    /// Source location.
    pub span: Span,
}

/// `var name: ty;` or `val name: ty;`
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// The field name.
    pub name: String,
    /// `var` (true) or `val` (false).
    pub mutable: bool,
    /// Declared type.
    pub ty: TypeExpr,
    /// Source location.
    pub span: Span,
}

/// A syntactic type.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeExpr {
    /// What kind of type.
    pub kind: TypeExprKind,
    /// Source location.
    pub span: Span,
}

/// The kinds of syntactic types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExprKind {
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// A class by name.
    Class(String),
}

/// `fn name(params) -> ret { body }`
#[derive(Debug, Clone, PartialEq)]
pub struct FnDecl {
    /// The function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Return type (`None` = unit).
    pub ret: Option<TypeExpr>,
    /// The body.
    pub body: Block,
    /// Source location.
    pub span: Span,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: TypeExpr,
    /// Source location.
    pub span: Span,
}

/// `{ stmts }`
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Source location.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// What kind of statement.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// The kinds of statements.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `let name (: ty)? = init;`
    Let {
        /// Variable name.
        name: String,
        /// Optional type annotation.
        ty: Option<TypeExpr>,
        /// Initializer.
        init: Expr,
    },
    /// `target = value;` where target is a variable or field access.
    Assign {
        /// Assignment target (a `Var` or `Field` expression).
        target: Expr,
        /// Right-hand side.
        value: Expr,
    },
    /// `if cond { then } else { else }?`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Optional else branch.
        else_blk: Option<Block>,
    },
    /// `while cond { body }`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `atomic { body }`
    Atomic {
        /// The transactional region.
        body: Block,
    },
    /// `return expr?;`
    Return {
        /// Optional return value.
        value: Option<Expr>,
    },
    /// An expression evaluated for effect (typically a call).
    Expr {
        /// The expression.
        expr: Expr,
    },
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Unique id for type-table lookups.
    pub id: ExprId,
    /// What kind of expression.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// The kinds of expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// `null`
    Null,
    /// Variable reference.
    Var(String),
    /// `obj.field`
    Field {
        /// The object expression.
        obj: Box<Expr>,
        /// The field name.
        field: String,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `callee(args)`
    Call {
        /// The function name.
        callee: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `new Class(args)` — zero args means all fields zero/null.
    New {
        /// The class name.
        class: String,
        /// Field initializers, in layout order (or empty).
        args: Vec<Expr>,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean negation.
    Not,
}

impl Program {
    /// Looks up a function declaration by name.
    pub fn function(&self, name: &str) -> Option<&FnDecl> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a class declaration by name.
    pub fn class(&self, name: &str) -> Option<&ClassDecl> {
        self.classes.iter().find(|c| c.name == name)
    }
}
