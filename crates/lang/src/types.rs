//! The TxIL type checker.
//!
//! Produces a [`TypeInfo`]: class and function tables plus a type for
//! every expression node, which the lowering in `omt-ir` uses to place
//! barriers (and, for `val` fields, to license eliding them).

use std::collections::HashMap;

use crate::ast::*;
use crate::diag::Diagnostics;
use crate::token::Span;

/// A semantic type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 63-bit integer.
    Int,
    /// Boolean.
    Bool,
    /// Reference to the class with this index in the [`ClassTable`].
    Class(usize),
    /// The type of the `null` literal (assignable to any class type).
    Null,
}

impl Type {
    /// True if a value of `self` can be stored where `target` is
    /// expected.
    pub fn is_assignable_to(self, target: Type) -> bool {
        match (self, target) {
            (Type::Null, Type::Class(_)) => true,
            (a, b) => a == b,
        }
    }

    /// True if `self` and `other` may be compared with `==`/`!=`.
    pub fn is_comparable_with(self, other: Type) -> bool {
        self.is_assignable_to(other) || other.is_assignable_to(self)
    }
}

/// One field of a checked class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldInfo {
    /// Field name.
    pub name: String,
    /// True for `val` fields (no barriers needed on reads).
    pub immutable: bool,
    /// Field type.
    pub ty: Type,
}

/// One checked class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassInfo {
    /// Class name.
    pub name: String,
    /// Fields in layout order.
    pub fields: Vec<FieldInfo>,
}

impl ClassInfo {
    /// Index of the named field.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }
}

/// All checked classes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassTable {
    /// Classes in declaration order; [`Type::Class`] indexes this.
    pub classes: Vec<ClassInfo>,
    by_name: HashMap<String, usize>,
}

impl ClassTable {
    /// Looks a class up by name.
    pub fn lookup(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// The class at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn class(&self, index: usize) -> &ClassInfo {
        &self.classes[index]
    }
}

/// The signature of a checked function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSig {
    /// Function name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type (`None` = unit).
    pub ret: Option<Type>,
}

/// All checked functions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnTable {
    /// Signatures in declaration order.
    pub sigs: Vec<FnSig>,
    by_name: HashMap<String, usize>,
}

impl FnTable {
    /// Looks a function up by name.
    pub fn lookup(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }
}

/// The type checker's output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TypeInfo {
    /// Checked classes.
    pub classes: ClassTable,
    /// Checked function signatures.
    pub functions: FnTable,
    expr_types: HashMap<ExprId, Type>,
}

impl TypeInfo {
    /// The type of expression `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the checked program (or the
    /// expression had the unit type, which is never recorded).
    pub fn type_of(&self, id: ExprId) -> Type {
        *self.expr_types.get(&id).expect("expression was not typed")
    }

    /// The type of expression `id`, if it has one.
    pub fn try_type_of(&self, id: ExprId) -> Option<Type> {
        self.expr_types.get(&id).copied()
    }
}

/// Type-checks a parsed program.
///
/// # Errors
///
/// Returns every type error found (checking continues past errors where
/// possible).
///
/// # Examples
///
/// ```
/// use omt_lang::{parse, check};
///
/// let program = parse("fn inc(x: int) -> int { return x + 1; }")?;
/// let info = check(&program)?;
/// assert!(info.functions.lookup("inc").is_some());
/// # Ok::<(), omt_lang::Diagnostics>(())
/// ```
pub fn check(program: &Program) -> Result<TypeInfo, Diagnostics> {
    let mut diags = Diagnostics::new();

    // Pass 1a: collect class names.
    let mut classes = ClassTable::default();
    for decl in &program.classes {
        if classes.by_name.contains_key(&decl.name) {
            diags.error(format!("duplicate class `{}`", decl.name), decl.span);
            continue;
        }
        classes.by_name.insert(decl.name.clone(), classes.classes.len());
        classes.classes.push(ClassInfo { name: decl.name.clone(), fields: Vec::new() });
    }

    // Pass 1b: resolve field types (classes may reference each other).
    for decl in &program.classes {
        let Some(index) = classes.by_name.get(&decl.name).copied() else { continue };
        if !classes.classes[index].fields.is_empty() {
            continue; // duplicate decl, already reported
        }
        let mut fields = Vec::new();
        for field in &decl.fields {
            if fields.iter().any(|f: &FieldInfo| f.name == field.name) {
                diags.error(
                    format!("duplicate field `{}` in class `{}`", field.name, decl.name),
                    field.span,
                );
                continue;
            }
            let ty = resolve_type(&field.ty, &classes, &mut diags);
            fields.push(FieldInfo { name: field.name.clone(), immutable: !field.mutable, ty });
        }
        classes.classes[index].fields = fields;
    }

    // Pass 1c: collect function signatures.
    let mut functions = FnTable::default();
    for decl in &program.functions {
        if functions.by_name.contains_key(&decl.name) {
            diags.error(format!("duplicate function `{}`", decl.name), decl.span);
            continue;
        }
        let params =
            decl.params.iter().map(|p| resolve_type(&p.ty, &classes, &mut diags)).collect();
        let ret = decl.ret.as_ref().map(|t| resolve_type(t, &classes, &mut diags));
        functions.by_name.insert(decl.name.clone(), functions.sigs.len());
        functions.sigs.push(FnSig { name: decl.name.clone(), params, ret });
    }

    // Pass 2: check bodies.
    let mut info = TypeInfo { classes, functions, expr_types: HashMap::new() };
    for decl in &program.functions {
        let Some(fn_index) = info.functions.lookup(&decl.name) else { continue };
        let sig = info.functions.sigs[fn_index].clone();
        let mut checker = BodyChecker {
            info: &mut info,
            diags: &mut diags,
            scopes: vec![HashMap::new()],
            ret: sig.ret,
            atomic_depth: 0,
        };
        for (param, ty) in decl.params.iter().zip(sig.params.iter()) {
            if checker.scopes[0].insert(param.name.clone(), *ty).is_some() {
                checker.diags.error(format!("duplicate parameter `{}`", param.name), param.span);
            }
        }
        checker.check_block(&decl.body);
        if sig.ret.is_some() && !always_returns(&decl.body) {
            diags.error(
                format!("function `{}` may finish without returning a value", decl.name),
                decl.span,
            );
        }
    }

    diags.into_result(info)
}

/// Conservative "all paths return" analysis (no reachability through
/// loops: a `while` may run zero times, and `atomic` bodies cannot
/// return at all).
fn always_returns(block: &Block) -> bool {
    block.stmts.iter().any(stmt_always_returns)
}

fn stmt_always_returns(stmt: &Stmt) -> bool {
    match &stmt.kind {
        StmtKind::Return { .. } => true,
        StmtKind::If { then_blk, else_blk: Some(else_blk), .. } => {
            always_returns(then_blk) && always_returns(else_blk)
        }
        _ => false,
    }
}

fn resolve_type(ty: &TypeExpr, classes: &ClassTable, diags: &mut Diagnostics) -> Type {
    match &ty.kind {
        TypeExprKind::Int => Type::Int,
        TypeExprKind::Bool => Type::Bool,
        TypeExprKind::Class(name) => match classes.lookup(name) {
            Some(index) => Type::Class(index),
            None => {
                diags.error(format!("unknown class `{name}`"), ty.span);
                Type::Int // recovery type
            }
        },
    }
}

struct BodyChecker<'a> {
    info: &'a mut TypeInfo,
    diags: &'a mut Diagnostics,
    scopes: Vec<HashMap<String, Type>>,
    ret: Option<Type>,
    atomic_depth: u32,
}

impl BodyChecker<'_> {
    fn lookup_var(&self, name: &str) -> Option<Type> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn declare(&mut self, name: &str, ty: Type, span: Span) {
        let scope = self.scopes.last_mut().expect("at least one scope");
        if scope.insert(name.to_owned(), ty).is_some() {
            self.diags.error(format!("`{name}` is already defined in this scope"), span);
        }
    }

    fn check_block(&mut self, block: &Block) {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.check_stmt(stmt);
        }
        self.scopes.pop();
    }

    fn check_stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Let { name, ty, init } => {
                let init_ty = self.check_expr(init);
                let declared = ty.as_ref().map(|t| resolve_type(t, &self.info.classes, self.diags));
                let var_ty = match (declared, init_ty) {
                    (Some(d), Some(i)) => {
                        if !i.is_assignable_to(d) {
                            self.diags.error(
                                format!(
                                    "initializer type {} does not match annotation {}",
                                    self.describe(i),
                                    self.describe(d)
                                ),
                                init.span,
                            );
                        }
                        d
                    }
                    (Some(d), None) => {
                        self.diags.error("initializer has no value", init.span);
                        d
                    }
                    (None, Some(Type::Null)) => {
                        self.diags.error(
                            "cannot infer a class type from `null`; add an annotation",
                            stmt.span,
                        );
                        Type::Null
                    }
                    (None, Some(i)) => i,
                    (None, None) => {
                        self.diags.error("initializer has no value", init.span);
                        Type::Int
                    }
                };
                self.declare(name, var_ty, stmt.span);
            }
            StmtKind::Assign { target, value } => {
                let value_ty = self.check_expr(value);
                match &target.kind {
                    ExprKind::Var(name) => match self.lookup_var(name) {
                        Some(var_ty) => {
                            if let Some(v) = value_ty {
                                if !v.is_assignable_to(var_ty) {
                                    self.diags.error(
                                        format!(
                                            "cannot assign {} to variable of type {}",
                                            self.describe(v),
                                            self.describe(var_ty)
                                        ),
                                        value.span,
                                    );
                                }
                            }
                        }
                        None => {
                            self.diags.error(format!("unknown variable `{name}`"), target.span);
                        }
                    },
                    ExprKind::Field { obj, field } => {
                        let obj_ty = self.check_expr(obj);
                        if let Some(Type::Class(index)) = obj_ty {
                            let class = self.info.classes.class(index).clone();
                            match class.field_index(field) {
                                Some(fi) => {
                                    let finfo = &class.fields[fi];
                                    if finfo.immutable {
                                        self.diags.error(
                                            format!(
                                                "cannot assign to immutable field `{}.{}`",
                                                class.name, field
                                            ),
                                            target.span,
                                        );
                                    }
                                    if let Some(v) = value_ty {
                                        if !v.is_assignable_to(finfo.ty) {
                                            self.diags.error(
                                                format!(
                                                    "cannot assign {} to field of type {}",
                                                    self.describe(v),
                                                    self.describe(finfo.ty)
                                                ),
                                                value.span,
                                            );
                                        }
                                    }
                                }
                                None => self.diags.error(
                                    format!("class `{}` has no field `{field}`", class.name),
                                    target.span,
                                ),
                            }
                        } else if obj_ty.is_some() {
                            self.diags.error("field access on a non-object", obj.span);
                        }
                    }
                    _ => unreachable!("parser restricts assignment targets"),
                }
            }
            StmtKind::If { cond, then_blk, else_blk } => {
                self.expect_bool(cond);
                self.check_block(then_blk);
                if let Some(e) = else_blk {
                    self.check_block(e);
                }
            }
            StmtKind::While { cond, body } => {
                self.expect_bool(cond);
                self.check_block(body);
            }
            StmtKind::Atomic { body } => {
                self.atomic_depth += 1;
                self.check_block(body);
                self.atomic_depth -= 1;
            }
            StmtKind::Return { value } => {
                if self.atomic_depth > 0 {
                    self.diags.error("`return` is not allowed inside `atomic`", stmt.span);
                }
                match (&self.ret.clone(), value) {
                    (None, None) => {}
                    (None, Some(v)) => {
                        self.check_expr(v);
                        self.diags.error("function has no return type", v.span);
                    }
                    (Some(_), None) => {
                        self.diags.error("missing return value", stmt.span);
                    }
                    (Some(expected), Some(v)) => {
                        if let Some(actual) = self.check_expr(v) {
                            if !actual.is_assignable_to(*expected) {
                                self.diags.error(
                                    format!(
                                        "return type mismatch: expected {}, found {}",
                                        self.describe(*expected),
                                        self.describe(actual)
                                    ),
                                    v.span,
                                );
                            }
                        }
                    }
                }
            }
            StmtKind::Expr { expr } => {
                self.check_expr(expr);
            }
        }
    }

    fn expect_bool(&mut self, expr: &Expr) {
        if let Some(ty) = self.check_expr(expr) {
            if ty != Type::Bool {
                self.diags.error(
                    format!("condition must be bool, found {}", self.describe(ty)),
                    expr.span,
                );
            }
        }
    }

    /// Checks an expression; `None` means unit (a call to a function
    /// with no return type).
    fn check_expr(&mut self, expr: &Expr) -> Option<Type> {
        let ty = self.infer(expr)?;
        self.info.expr_types.insert(expr.id, ty);
        Some(ty)
    }

    fn infer(&mut self, expr: &Expr) -> Option<Type> {
        match &expr.kind {
            ExprKind::Int(_) => Some(Type::Int),
            ExprKind::Bool(_) => Some(Type::Bool),
            ExprKind::Null => Some(Type::Null),
            ExprKind::Var(name) => match self.lookup_var(name) {
                Some(ty) => Some(ty),
                None => {
                    self.diags.error(format!("unknown variable `{name}`"), expr.span);
                    Some(Type::Int)
                }
            },
            ExprKind::Field { obj, field } => {
                let obj_ty = self.check_expr(obj)?;
                match obj_ty {
                    Type::Class(index) => {
                        let class = self.info.classes.class(index);
                        match class.field_index(field) {
                            Some(fi) => Some(class.fields[fi].ty),
                            None => {
                                let class_name = class.name.clone();
                                self.diags.error(
                                    format!("class `{class_name}` has no field `{field}`"),
                                    expr.span,
                                );
                                Some(Type::Int)
                            }
                        }
                    }
                    Type::Null => {
                        self.diags.error("field access on `null`", obj.span);
                        Some(Type::Int)
                    }
                    _ => {
                        self.diags.error("field access on a non-object", obj.span);
                        Some(Type::Int)
                    }
                }
            }
            ExprKind::Unary { op, expr: inner } => {
                let inner_ty = self.check_expr(inner)?;
                match op {
                    UnOp::Neg => {
                        if inner_ty != Type::Int {
                            self.diags.error("`-` requires an int operand", inner.span);
                        }
                        Some(Type::Int)
                    }
                    UnOp::Not => {
                        if inner_ty != Type::Bool {
                            self.diags.error("`!` requires a bool operand", inner.span);
                        }
                        Some(Type::Bool)
                    }
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.check_expr(lhs);
                let rt = self.check_expr(rhs);
                let (lt, rt) = (lt?, rt?);
                use BinOp::*;
                match op {
                    Add | Sub | Mul | Div | Mod => {
                        if lt != Type::Int || rt != Type::Int {
                            self.diags.error("arithmetic requires int operands", expr.span);
                        }
                        Some(Type::Int)
                    }
                    Lt | Le | Gt | Ge => {
                        if lt != Type::Int || rt != Type::Int {
                            self.diags.error("comparison requires int operands", expr.span);
                        }
                        Some(Type::Bool)
                    }
                    Eq | Ne => {
                        if !lt.is_comparable_with(rt) {
                            self.diags.error(
                                format!(
                                    "cannot compare {} with {}",
                                    self.describe(lt),
                                    self.describe(rt)
                                ),
                                expr.span,
                            );
                        }
                        Some(Type::Bool)
                    }
                    And | Or => {
                        if lt != Type::Bool || rt != Type::Bool {
                            self.diags.error("logical operators require bool operands", expr.span);
                        }
                        Some(Type::Bool)
                    }
                }
            }
            ExprKind::Call { callee, args } => {
                let arg_types: Vec<Option<Type>> =
                    args.iter().map(|a| self.check_expr(a)).collect();
                match self.info.functions.lookup(callee) {
                    Some(index) => {
                        let sig = self.info.functions.sigs[index].clone();
                        if sig.params.len() != args.len() {
                            self.diags.error(
                                format!(
                                    "`{callee}` expects {} argument(s), found {}",
                                    sig.params.len(),
                                    args.len()
                                ),
                                expr.span,
                            );
                        } else {
                            for ((arg, at), pt) in
                                args.iter().zip(arg_types.iter()).zip(sig.params.iter())
                            {
                                if let Some(at) = at {
                                    if !at.is_assignable_to(*pt) {
                                        self.diags.error(
                                            format!(
                                                "argument type {} does not match parameter type {}",
                                                self.describe(*at),
                                                self.describe(*pt)
                                            ),
                                            arg.span,
                                        );
                                    }
                                }
                            }
                        }
                        sig.ret
                    }
                    None => {
                        self.diags.error(format!("unknown function `{callee}`"), expr.span);
                        Some(Type::Int)
                    }
                }
            }
            ExprKind::New { class, args } => {
                let arg_types: Vec<Option<Type>> =
                    args.iter().map(|a| self.check_expr(a)).collect();
                match self.info.classes.lookup(class) {
                    Some(index) => {
                        let cinfo = self.info.classes.class(index).clone();
                        if !args.is_empty() {
                            if cinfo.fields.len() != args.len() {
                                self.diags.error(
                                    format!(
                                        "`new {class}` expects 0 or {} argument(s), found {}",
                                        cinfo.fields.len(),
                                        args.len()
                                    ),
                                    expr.span,
                                );
                            } else {
                                for ((arg, at), field) in
                                    args.iter().zip(arg_types.iter()).zip(cinfo.fields.iter())
                                {
                                    if let Some(at) = at {
                                        if !at.is_assignable_to(field.ty) {
                                            self.diags.error(
                                                format!(
                                                    "initializer type {} does not match field `{}` of type {}",
                                                    self.describe(*at),
                                                    field.name,
                                                    self.describe(field.ty)
                                                ),
                                                arg.span,
                                            );
                                        }
                                    }
                                }
                            }
                        }
                        Some(Type::Class(index))
                    }
                    None => {
                        self.diags.error(format!("unknown class `{class}`"), expr.span);
                        Some(Type::Int)
                    }
                }
            }
        }
    }

    fn describe(&self, ty: Type) -> String {
        match ty {
            Type::Int => "int".to_owned(),
            Type::Bool => "bool".to_owned(),
            Type::Null => "null".to_owned(),
            Type::Class(index) => format!("`{}`", self.info.classes.class(index).name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<TypeInfo, Diagnostics> {
        check(&parse(src).expect("parse"))
    }

    fn errs(src: &str) -> String {
        check_src(src).unwrap_err().to_string()
    }

    #[test]
    fn well_typed_program_checks() {
        let info = check_src(
            "class Node { val key: int; var next: Node; }
             fn find(h: Node, k: int) -> bool {
                 let n = h;
                 let found = false;
                 atomic {
                     while n != null && !found {
                         if n.key == k { found = true; } else { n = n.next; }
                     }
                 }
                 return found;
             }",
        )
        .unwrap();
        assert_eq!(info.classes.classes.len(), 1);
        assert!(info.classes.class(0).fields[0].immutable);
    }

    #[test]
    fn immutable_field_assignment_rejected() {
        assert!(errs(
            "class P { val x: int; }
             fn f(p: P) { p.x = 1; }"
        )
        .contains("immutable field"));
    }

    #[test]
    fn return_inside_atomic_rejected() {
        assert!(errs("fn f() -> int { atomic { return 1; } }").contains("not allowed inside"));
    }

    #[test]
    fn arithmetic_on_refs_rejected() {
        assert!(errs(
            "class P { var x: int; }
             fn f(p: P) -> int { return p + 1; }"
        )
        .contains("arithmetic requires int"));
    }

    #[test]
    fn null_comparison_with_class_allowed() {
        check_src(
            "class P { var x: int; }
             fn f(p: P) -> bool { return p == null; }",
        )
        .unwrap();
    }

    #[test]
    fn null_comparison_with_int_rejected() {
        assert!(errs("fn f(x: int) -> bool { return x == null; }").contains("cannot compare"));
    }

    #[test]
    fn unknown_names_reported() {
        let msg = errs("fn f() { g(); let a = new Q(); let b = c; }");
        assert!(msg.contains("unknown function `g`"));
        assert!(msg.contains("unknown class `Q`"));
        assert!(msg.contains("unknown variable `c`"));
    }

    #[test]
    fn call_arity_and_types_checked() {
        let msg = errs(
            "fn g(x: int, y: bool) {}
             fn f() { g(1); g(true, 1); }",
        );
        assert!(msg.contains("expects 2 argument(s)"));
        assert!(msg.contains("does not match parameter"));
    }

    #[test]
    fn new_initializer_arity_checked() {
        let msg = errs(
            "class P { var x: int; var y: int; }
             fn f() { let p = new P(1); }",
        );
        assert!(msg.contains("expects 0 or 2"));
    }

    #[test]
    fn let_null_requires_annotation() {
        assert!(errs("fn f() { let x = null; }").contains("annotation"));
        check_src(
            "class P { var x: int; }
             fn f() { let p: P = null; }",
        )
        .unwrap();
    }

    #[test]
    fn duplicate_declarations_rejected() {
        let msg = errs(
            "class A { var x: int; var x: int; }
             class A { var y: int; }
             fn f() {}
             fn f() {}",
        );
        assert!(msg.contains("duplicate field"));
        assert!(msg.contains("duplicate class"));
        assert!(msg.contains("duplicate function"));
    }

    #[test]
    fn expr_types_recorded() {
        let program = parse("fn f(x: int) -> bool { return x < 3; }").unwrap();
        let info = check(&program).unwrap();
        let StmtKind::Return { value: Some(e) } = &program.functions[0].body.stmts[0].kind else {
            panic!()
        };
        assert_eq!(info.type_of(e.id), Type::Bool);
        let ExprKind::Binary { lhs, .. } = &e.kind else { panic!() };
        assert_eq!(info.type_of(lhs.id), Type::Int);
    }

    #[test]
    fn shadowing_in_nested_scope_allowed_but_not_same_scope() {
        check_src("fn f() { let x = 1; if true { let x = 2; x = 3; } }").unwrap();
        assert!(errs("fn f() { let x = 1; let x = 2; }").contains("already defined"));
    }

    #[test]
    fn condition_must_be_bool() {
        assert!(errs("fn f() { while 1 {} }").contains("must be bool"));
    }

    #[test]
    fn missing_return_detected() {
        assert!(errs("fn f(x: int) -> int { if x > 0 { return 1; } }")
            .contains("may finish without returning"));
        assert!(errs("fn f(n: int) -> int { while n > 0 { return n; } }")
            .contains("may finish without returning"));
    }

    #[test]
    fn exhaustive_branches_satisfy_return_analysis() {
        check_src(
            "fn f(x: int) -> int {
                 if x > 0 { return 1; } else if x < 0 { return 0 - 1; } else { return 0; }
             }",
        )
        .unwrap();
        check_src("fn f() { if true { } }").unwrap(); // unit fn: no requirement
    }
}
