//! Compiler diagnostics.

use std::fmt;

use crate::token::Span;

/// A single error produced by the lexer, parser, or type checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Human-readable description (lowercase, no trailing period).
    pub message: String,
    /// Source location.
    pub span: Span,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic { message: message.into(), span }
    }

    /// Renders the diagnostic with line/column resolved against `source`.
    pub fn render(&self, source: &str) -> String {
        let (line, col) = self.span.line_col(source);
        format!("error at {line}:{col}: {}", self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error at byte {}: {}", self.span.start, self.message)
    }
}

impl std::error::Error for Diagnostic {}

/// A batch of diagnostics; the error type of compilation phases.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diagnostics {
    /// The individual errors, in source order of discovery.
    pub errors: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Creates an empty batch.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Adds an error.
    pub fn error(&mut self, message: impl Into<String>, span: Span) {
        self.errors.push(Diagnostic::new(message, span));
    }

    /// True if no errors were recorded.
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }

    /// Number of errors.
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// Converts into a `Result`: `Ok(value)` if empty, `Err(self)` otherwise.
    pub fn into_result<T>(self, value: T) -> Result<T, Diagnostics> {
        if self.is_empty() {
            Ok(value)
        } else {
            Err(self)
        }
    }

    /// Renders all diagnostics against `source`, one per line.
    pub fn render(&self, source: &str) -> String {
        self.errors.iter().map(|d| d.render(source)).collect::<Vec<_>>().join("\n")
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.errors.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        if self.errors.is_empty() {
            write!(f, "no errors")?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostics {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_resolves_position() {
        let d = Diagnostic::new("unexpected `;`", Span::new(4, 5));
        assert_eq!(d.render("ab\nc;"), "error at 2:2: unexpected `;`");
    }

    #[test]
    fn into_result() {
        let ok = Diagnostics::new().into_result(42);
        assert_eq!(ok, Ok(42));
        let mut diags = Diagnostics::new();
        diags.error("boom", Span::default());
        assert!(diags.into_result(42).is_err());
    }

    #[test]
    fn display_never_empty() {
        assert_eq!(Diagnostics::new().to_string(), "no errors");
    }
}
