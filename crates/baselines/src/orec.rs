//! A direct-update STM with *hashed ownership records* instead of
//! per-object header words.
//!
//! The PLDI 2006 design attaches STM metadata to each object's header;
//! the word-based alternative it argues against keeps a global table of
//! ownership records ("orecs") indexed by an address hash. The orec
//! design needs no header space, but distinct locations that hash to
//! the same orec *falsely conflict*, and every barrier pays a hash.
//! This implementation exists to measure that trade-off (experiment
//! E8c); the transaction machinery (direct update, undo log,
//! commit-time validation) matches `omt-stm`.
//!
//! Orec encoding (same shape as the object STM word):
//!
//! ```text
//! bit 0 = 0:  [ version : 63 ][0]
//! bit 0 = 1:  [ owner token : 63 ][1]
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use omt_heap::{Heap, ObjRef, Word};

/// Conflict error for the orec STM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrecConflict {
    /// An orec was owned by another transaction.
    Busy,
    /// Read validation failed.
    Invalid,
}

impl fmt::Display for OrecConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrecConflict::Busy => write!(f, "ownership record busy"),
            OrecConflict::Invalid => write!(f, "read validation failed"),
        }
    }
}

impl std::error::Error for OrecConflict {}

/// Counters for the orec STM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrecStatsSnapshot {
    /// Transactions begun.
    pub begins: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Aborts.
    pub aborts: u64,
}

/// Direct-update STM over a hashed ownership-record table.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use omt_heap::{Heap, ClassDesc, Word};
/// use omt_baselines::OrecStm;
///
/// let heap = Arc::new(Heap::new());
/// let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["v"]));
/// let obj = heap.alloc(class)?;
/// let stm = OrecStm::new(heap.clone(), 10); // 1024 orecs
///
/// stm.atomically(|tx| {
///     let v = tx.read(obj, 0)?.as_scalar().unwrap();
///     tx.write(obj, 0, Word::from_scalar(v + 1))?;
///     Ok(())
/// });
/// assert_eq!(heap.load(obj, 0).as_scalar(), Some(1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct OrecStm {
    heap: Arc<Heap>,
    orecs: Box<[AtomicU64]>,
    shift: u32,
    next_token: AtomicU64,
    begins: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
}

impl OrecStm {
    /// Creates an orec STM with `2^bits` ownership records.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 24`.
    pub fn new(heap: Arc<Heap>, bits: u32) -> OrecStm {
        assert!((1..=24).contains(&bits), "orec bits must be in 1..=24");
        let len = 1usize << bits;
        OrecStm {
            heap,
            orecs: (0..len).map(|_| AtomicU64::new(0)).collect(),
            shift: 64 - bits,
            next_token: AtomicU64::new(1),
            begins: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
        }
    }

    /// The underlying heap.
    pub fn heap(&self) -> &Arc<Heap> {
        &self.heap
    }

    /// Number of ownership records.
    pub fn orec_count(&self) -> usize {
        self.orecs.len()
    }

    /// The ownership-record index guarding `(obj, field)`.
    ///
    /// Exposed so the evaluation can measure how often *disjoint*
    /// locations share a record (false-conflict probability).
    pub fn orec_index(&self, obj: ObjRef, field: usize) -> usize {
        let key = (u64::from(obj.to_raw()) << 22) | field as u64;
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize
    }

    /// Begins a transaction.
    pub fn begin(&self) -> OrecTx<'_> {
        self.begins.fetch_add(1, Ordering::Relaxed);
        OrecTx {
            stm: self,
            token: self.next_token.fetch_add(1, Ordering::Relaxed),
            reads: Vec::new(),
            owned: Vec::new(),
            undo: Vec::new(),
            finished: false,
        }
    }

    /// Runs `f` transactionally with retry and backoff.
    pub fn atomically<T>(
        &self,
        mut f: impl FnMut(&mut OrecTx<'_>) -> Result<T, OrecConflict>,
    ) -> T {
        let mut attempt = 0u32;
        loop {
            let mut tx = self.begin();
            match f(&mut tx) {
                Ok(v) => {
                    if tx.commit().is_ok() {
                        return v;
                    }
                }
                Err(_) => tx.abort(),
            }
            attempt = attempt.saturating_add(1);
            backoff(attempt);
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> OrecStatsSnapshot {
        OrecStatsSnapshot {
            begins: self.begins.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
        }
    }
}

/// An in-flight orec transaction. Dropping without commit aborts.
#[derive(Debug)]
pub struct OrecTx<'a> {
    stm: &'a OrecStm,
    token: u64,
    /// (orec index, observed version word).
    reads: Vec<(usize, u64)>,
    /// (orec index, original version word).
    owned: Vec<(usize, u64)>,
    undo: Vec<(ObjRef, u32, u64)>,
    finished: bool,
}

impl OrecTx<'_> {
    fn owned_word(&self) -> u64 {
        (self.token << 1) | 1
    }

    /// Transactional read: log the location's orec, read in place.
    ///
    /// # Errors
    ///
    /// Never fails at read time (optimistic); the error type matches
    /// [`OrecTx::write`] for composition.
    pub fn read(&mut self, obj: ObjRef, field: usize) -> Result<Word, OrecConflict> {
        let index = self.stm.orec_index(obj, field);
        let observed = self.stm.orecs[index].load(Ordering::Acquire);
        if observed != self.owned_word() {
            self.reads.push((index, observed));
        }
        Ok(self.stm.heap.load(obj, field))
    }

    /// Transactional write: acquire the location's orec, undo-log, and
    /// store in place.
    ///
    /// # Errors
    ///
    /// [`OrecConflict::Busy`] when another transaction owns the orec.
    pub fn write(&mut self, obj: ObjRef, field: usize, value: Word) -> Result<(), OrecConflict> {
        let index = self.stm.orec_index(obj, field);
        let orec = &self.stm.orecs[index];
        let mut spins = 0u32;
        loop {
            let current = orec.load(Ordering::Acquire);
            if current == self.owned_word() {
                break;
            }
            if current & 1 == 1 {
                if spins > 64 {
                    return Err(OrecConflict::Busy);
                }
                spins += 1;
                std::hint::spin_loop();
                continue;
            }
            if orec
                .compare_exchange(current, self.owned_word(), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.owned.push((index, current));
                break;
            }
        }
        let old = self.stm.heap.field_atomic(obj, field).load(Ordering::Relaxed);
        self.undo.push((obj, field as u32, old));
        self.stm.heap.store(obj, field, value);
        Ok(())
    }

    /// Attempts to commit (validate reads, then release with bumped
    /// versions).
    ///
    /// # Errors
    ///
    /// [`OrecConflict::Invalid`] if a read orec changed; the heap has
    /// been rolled back when the error returns.
    pub fn commit(mut self) -> Result<(), OrecConflict> {
        std::sync::atomic::fence(Ordering::Acquire);
        for (index, observed) in &self.reads {
            let current = self.stm.orecs[*index].load(Ordering::Acquire);
            let valid = if current == *observed {
                // Same version word, and not owned by someone else now.
                current & 1 == 0
            } else {
                // Changed: acceptable only if we own it and the observed
                // word was its pre-acquisition version.
                current == self.owned_word()
                    && self.owned.iter().any(|(i, original)| i == index && original == observed)
            };
            if !valid {
                self.rollback();
                return Err(OrecConflict::Invalid);
            }
        }
        for (index, original) in self.owned.drain(..) {
            self.stm.orecs[index].store(original.wrapping_add(2), Ordering::Release);
        }
        self.finished = true;
        self.stm.commits.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Aborts, rolling back in-place writes and releasing orecs.
    pub fn abort(mut self) {
        self.rollback();
        self.finished = true;
        self.stm.aborts.fetch_add(1, Ordering::Relaxed);
    }

    fn rollback(&mut self) {
        for (obj, field, old) in self.undo.iter().rev() {
            self.stm.heap.field_atomic(*obj, *field as usize).store(*old, Ordering::Relaxed);
        }
        self.undo.clear();
        for (index, original) in self.owned.drain(..) {
            self.stm.orecs[index].store(original, Ordering::Release);
        }
        self.reads.clear();
    }
}

impl Drop for OrecTx<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.rollback();
            self.stm.aborts.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn backoff(attempt: u32) {
    let cap = 1u32 << attempt.min(12);
    let spins = omt_util::rng::thread_rng().gen_range(0..=cap);
    for _ in 0..spins {
        std::hint::spin_loop();
    }
    if attempt > 8 {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_heap::ClassDesc;

    fn setup(bits: u32) -> (Arc<Heap>, omt_heap::ClassId, OrecStm) {
        let heap = Arc::new(Heap::new());
        let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["a", "b"]));
        let stm = OrecStm::new(heap.clone(), bits);
        (heap, class, stm)
    }

    #[test]
    fn read_write_commit_and_abort() {
        let (heap, class, stm) = setup(10);
        let obj = heap.alloc(class).unwrap();
        let mut tx = stm.begin();
        tx.write(obj, 0, Word::from_scalar(7)).unwrap();
        assert_eq!(tx.read(obj, 0).unwrap().as_scalar(), Some(7));
        tx.commit().unwrap();
        assert_eq!(heap.load(obj, 0).as_scalar(), Some(7));

        let mut tx = stm.begin();
        tx.write(obj, 0, Word::from_scalar(9)).unwrap();
        tx.abort();
        assert_eq!(heap.load(obj, 0).as_scalar(), Some(7));
    }

    #[test]
    fn conflicting_writer_invalidates_reader() {
        let (heap, class, stm) = setup(10);
        let obj = heap.alloc(class).unwrap();
        let mut reader = stm.begin();
        reader.read(obj, 0).unwrap();
        reader.write(obj, 1, Word::from_scalar(1)).unwrap();

        stm.atomically(|tx| tx.write(obj, 0, Word::from_scalar(5)));
        assert_eq!(reader.commit(), Err(OrecConflict::Invalid));
        assert_eq!(heap.load(obj, 1).as_scalar(), Some(0), "rolled back");
    }

    #[test]
    fn false_conflicts_with_tiny_orec_table() {
        // With a single orec, *disjoint* objects conflict — the
        // structural weakness of hashed ownership records.
        let (heap, class, stm) = setup(1);
        let a = heap.alloc(class).unwrap();
        let b = heap.alloc(class).unwrap();
        // Find two (object, field) pairs sharing an orec.
        let mut pair = None;
        'outer: for fa in 0..2usize {
            for fb in 0..2usize {
                if stm.orec_index(a, fa) == stm.orec_index(b, fb) {
                    pair = Some((fa, fb));
                    break 'outer;
                }
            }
        }
        let Some((fa, fb)) = pair else {
            // 2 orecs; with 4 pairs a collision is guaranteed by
            // pigeonhole across objects or within.
            panic!("expected a colliding pair");
        };
        let mut first = stm.begin();
        first.write(a, fa, Word::from_scalar(1)).unwrap();
        let mut second = stm.begin();
        assert_eq!(
            second.write(b, fb, Word::from_scalar(2)),
            Err(OrecConflict::Busy),
            "disjoint objects, same orec"
        );
        second.abort();
        first.commit().unwrap();
    }

    #[test]
    fn concurrent_increments_serialize() {
        let (heap, class, stm) = setup(8);
        let obj = heap.alloc(class).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let stm = &stm;
                scope.spawn(move || {
                    for _ in 0..500 {
                        stm.atomically(|tx| {
                            let v = tx.read(obj, 0)?.as_scalar().unwrap();
                            tx.write(obj, 0, Word::from_scalar(v + 1))
                        });
                    }
                });
            }
        });
        assert_eq!(heap.load(obj, 0).as_scalar(), Some(2000));
    }

    #[test]
    fn drop_aborts() {
        let (heap, class, stm) = setup(8);
        let obj = heap.alloc(class).unwrap();
        {
            let mut tx = stm.begin();
            tx.write(obj, 0, Word::from_scalar(3)).unwrap();
        }
        assert_eq!(heap.load(obj, 0).as_scalar(), Some(0));
        assert_eq!(stm.stats().aborts, 1);
    }
}
