//! # omt-baselines — comparison synchronization backends
//!
//! The PLDI 2006 evaluation compares its optimized direct-access STM
//! against the classic alternatives. This crate provides them, all over
//! the same [`omt_heap::Heap`] so workloads and the `omt-vm` interpreter
//! can swap backends without changing data layout:
//!
//! - [`CoarseLock`] — one global mutex around every atomic block;
//! - [`TwoPhaseLocking`] — encounter-time per-object exclusive locks
//!   with undo-based deadlock recovery (the generic "medium-grained"
//!   locking analogue of an STM);
//! - [`WStm`] — a buffered-update, global-version-clock word STM in the
//!   TL2 style: the indirect design whose per-read and commit-time costs
//!   the paper's direct-access scheme eliminates;
//! - [`OrecStm`] — a direct-update STM whose metadata lives in a hashed
//!   ownership-record table rather than object headers, quantifying the
//!   false-conflict cost the paper's per-object metadata avoids.
//!
//! Hand-crafted *fine-grained* lock-based data structures (the strongest
//! lock-based competitors) live with the workloads in `omt-workloads`,
//! since their locking protocols are structure-specific.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coarse;
mod orec;
mod twopl;
mod wstm;

pub use coarse::{CoarseGuard, CoarseLock};
pub use orec::{OrecConflict, OrecStatsSnapshot, OrecStm, OrecTx};
pub use twopl::{LockBusyError, TplStatsSnapshot, TplTx, TwoPhaseLocking};
pub use wstm::{WConflict, WStm, WStmStatsSnapshot, WTx};
