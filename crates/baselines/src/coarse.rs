//! Coarse-grained locking: one global mutex around every atomic block.
//!
//! The classic baseline the paper's STM must beat once threads contend:
//! trivially correct, zero per-access overhead, zero scalability.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use omt_util::sync::Mutex;

/// A global-mutex synchronization backend.
///
/// # Examples
///
/// ```
/// use omt_baselines::CoarseLock;
///
/// let lock = CoarseLock::new();
/// let result = lock.with(|| 2 + 2);
/// assert_eq!(result, 4);
/// assert_eq!(lock.sections_entered(), 1);
/// ```
#[derive(Default)]
pub struct CoarseLock {
    mutex: Mutex<()>,
    sections: AtomicU64,
}

impl CoarseLock {
    /// Creates the lock.
    pub fn new() -> CoarseLock {
        CoarseLock::default()
    }

    /// Runs `f` as a critical section under the global lock.
    pub fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.enter();
        f()
    }

    /// Acquires the global lock, returning a guard that releases it on
    /// drop (for callers that cannot express the section as a closure,
    /// like the `omt-vm` interpreter).
    pub fn enter(&self) -> CoarseGuard<'_> {
        let guard = self.mutex.lock();
        self.sections.fetch_add(1, Ordering::Relaxed);
        CoarseGuard { _guard: guard }
    }

    /// Number of critical sections entered.
    pub fn sections_entered(&self) -> u64 {
        self.sections.load(Ordering::Relaxed)
    }
}

/// A held global lock; releases on drop.
#[derive(Debug)]
pub struct CoarseGuard<'a> {
    _guard: omt_util::sync::MutexGuard<'a, ()>,
}

impl fmt::Debug for CoarseLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoarseLock").field("sections", &self.sections_entered()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::arc_with_non_send_sync)] // Cell is the point: prove exclusion
    fn serializes_critical_sections() {
        let lock = std::sync::Arc::new(CoarseLock::new());
        let counter = std::sync::Arc::new(std::cell::Cell::new(0i64));
        // Cell is not Sync; wrap access entirely inside the lock using a
        // raw pointer smuggled through usize to prove mutual exclusion.
        let addr = counter.as_ptr() as usize;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let lock = lock.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        lock.with(|| {
                            // SAFETY: all accesses happen under the same
                            // mutex, so they are serialized.
                            let p = addr as *mut i64;
                            unsafe { *p += 1 };
                        });
                    }
                });
            }
        });
        assert_eq!(counter.get(), 4000);
        assert_eq!(lock.sections_entered(), 4000);
    }

    #[test]
    fn returns_closure_value() {
        let lock = CoarseLock::new();
        assert_eq!(lock.with(|| "ok"), "ok");
    }
}
