//! A buffered-update, global-clock word STM (TL2-style).
//!
//! This is the "classic" indirect STM design the paper positions its
//! direct-access scheme against: writes go to a transaction-private
//! buffer and reach the heap only at commit, after the write set is
//! locked and the read set validated against a global version clock.
//! Every transactional read pays buffer-lookup and double-check costs;
//! every commit pays a write-back pass.
//!
//! Header encoding (distinct from `omt-stm`'s):
//!
//! ```text
//! [ version : 63 ][ locked : 1 ]
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use omt_heap::{Heap, ObjRef, Word};

/// Why a buffered transaction failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WConflict {
    /// A needed lock was held by another transaction.
    Busy,
    /// A read location changed since the transaction began.
    Invalid,
}

impl fmt::Display for WConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WConflict::Busy => write!(f, "write lock busy"),
            WConflict::Invalid => write!(f, "read validation failed"),
        }
    }
}

impl std::error::Error for WConflict {}

/// Counters for the buffered STM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WStmStatsSnapshot {
    /// Transactions begun.
    pub begins: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Aborts (busy + invalid).
    pub aborts: u64,
}

/// The TL2-style buffered STM over a shared heap.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use omt_heap::{Heap, ClassDesc, Word};
/// use omt_baselines::WStm;
///
/// let heap = Arc::new(Heap::new());
/// let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["v"]));
/// let obj = heap.alloc(class)?;
/// let wstm = WStm::new(heap.clone());
///
/// wstm.atomically(|tx| {
///     let v = tx.read(obj, 0)?.as_scalar().unwrap();
///     tx.write(obj, 0, Word::from_scalar(v + 1));
///     Ok(())
/// });
/// assert_eq!(heap.load(obj, 0).as_scalar(), Some(1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct WStm {
    heap: Arc<Heap>,
    clock: AtomicU64,
    begins: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
}

impl WStm {
    /// Creates a buffered STM over `heap`.
    pub fn new(heap: Arc<Heap>) -> WStm {
        WStm {
            heap,
            clock: AtomicU64::new(0),
            begins: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
        }
    }

    /// The underlying heap.
    pub fn heap(&self) -> &Arc<Heap> {
        &self.heap
    }

    /// Begins a transaction at the current clock.
    pub fn begin(&self) -> WTx<'_> {
        self.begins.fetch_add(1, Ordering::Relaxed);
        WTx {
            wstm: self,
            rv: self.clock.load(Ordering::Acquire),
            reads: Vec::new(),
            write_index: HashMap::new(),
            writes: Vec::new(),
        }
    }

    /// Runs `f` transactionally with retry and backoff.
    pub fn atomically<T>(&self, mut f: impl FnMut(&mut WTx<'_>) -> Result<T, WConflict>) -> T {
        let mut attempt = 0u32;
        loop {
            let mut tx = self.begin();
            match f(&mut tx) {
                Ok(v) => {
                    if tx.commit().is_ok() {
                        return v;
                    }
                }
                Err(_) => {
                    self.aborts.fetch_add(1, Ordering::Relaxed);
                }
            }
            attempt = attempt.saturating_add(1);
            backoff(attempt);
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WStmStatsSnapshot {
        WStmStatsSnapshot {
            begins: self.begins.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
        }
    }
}

/// An in-flight buffered transaction.
///
/// No cleanup is needed on abandonment: writes never touched the heap.
#[derive(Debug)]
pub struct WTx<'a> {
    wstm: &'a WStm,
    rv: u64,
    reads: Vec<ObjRef>,
    write_index: HashMap<(u32, u32), usize>,
    writes: Vec<(ObjRef, u32, u64)>,
}

impl WTx<'_> {
    /// Transactional read: consult the write buffer, then the heap with
    /// the TL2 pre/post version double-check.
    ///
    /// # Errors
    ///
    /// [`WConflict::Busy`] if the location is locked;
    /// [`WConflict::Invalid`] if it changed since the transaction began.
    pub fn read(&mut self, obj: ObjRef, field: usize) -> Result<Word, WConflict> {
        if let Some(&i) = self.write_index.get(&(obj.to_raw(), field as u32)) {
            return Ok(Word::from_bits(self.writes[i].2));
        }
        let header = self.wstm.heap.header_atomic(obj);
        let h1 = header.load(Ordering::Acquire);
        if h1 & 1 == 1 {
            return Err(WConflict::Busy);
        }
        if (h1 >> 1) > self.rv {
            return Err(WConflict::Invalid);
        }
        let bits = self.wstm.heap.field_atomic(obj, field).load(Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Acquire);
        let h2 = header.load(Ordering::Relaxed);
        if h1 != h2 {
            return Err(WConflict::Invalid);
        }
        self.reads.push(obj);
        Ok(Word::from_bits(bits))
    }

    /// Transactional write: buffered until commit.
    pub fn write(&mut self, obj: ObjRef, field: usize, value: Word) {
        let key = (obj.to_raw(), field as u32);
        match self.write_index.get(&key) {
            Some(&i) => self.writes[i].2 = value.to_bits(),
            None => {
                self.write_index.insert(key, self.writes.len());
                self.writes.push((obj, field as u32, value.to_bits()));
            }
        }
    }

    /// Number of buffered writes.
    pub fn write_set_size(&self) -> usize {
        self.writes.len()
    }

    /// Number of logged reads.
    pub fn read_set_size(&self) -> usize {
        self.reads.len()
    }

    /// Attempts to commit: lock write set, bump the clock, validate the
    /// read set, write back, release.
    ///
    /// # Errors
    ///
    /// [`WConflict::Busy`] or [`WConflict::Invalid`]; the heap is
    /// untouched on failure.
    pub fn commit(self) -> Result<(), WConflict> {
        let heap = &self.wstm.heap;

        // Read-only fast path: per-read double checks already ensured a
        // consistent snapshot at `rv`.
        if self.writes.is_empty() {
            self.wstm.commits.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }

        // Phase 1: lock the write set (distinct objects), remembering
        // each object's pre-lock header for validation and unwinding.
        let mut locked: Vec<(ObjRef, u64)> = Vec::new();
        let mut locked_versions: HashMap<u32, u64> = HashMap::new();
        let result = (|| {
            for (obj, _, _) in &self.writes {
                if locked_versions.contains_key(&obj.to_raw()) {
                    continue;
                }
                let header = heap.header_atomic(*obj);
                let mut spins = 0u32;
                loop {
                    let h = header.load(Ordering::Acquire);
                    if h & 1 == 0 {
                        if header
                            .compare_exchange(h, h | 1, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                        {
                            locked.push((*obj, h));
                            locked_versions.insert(obj.to_raw(), h >> 1);
                            break;
                        }
                    } else {
                        if spins > 64 {
                            return Err(WConflict::Busy);
                        }
                        spins += 1;
                        std::hint::spin_loop();
                    }
                }
            }

            // Phase 2: take a write version.
            let wv = self.wstm.clock.fetch_add(1, Ordering::AcqRel) + 1;

            // Phase 3: validate the read set (skippable if nobody else
            // committed since we began). Locations we locked ourselves
            // are validated against their pre-lock version.
            if wv > self.rv + 1 {
                for obj in &self.reads {
                    let version = match locked_versions.get(&obj.to_raw()) {
                        Some(&pre_lock) => pre_lock,
                        None => {
                            let h = heap.header_atomic(*obj).load(Ordering::Acquire);
                            if h & 1 == 1 {
                                return Err(WConflict::Busy);
                            }
                            h >> 1
                        }
                    };
                    if version > self.rv {
                        return Err(WConflict::Invalid);
                    }
                }
            }

            // Phase 4: write back and release at the new version.
            for (obj, field, bits) in &self.writes {
                heap.field_atomic(*obj, *field as usize).store(*bits, Ordering::Relaxed);
            }
            for (obj, _) in &locked {
                heap.header_atomic(*obj).store(wv << 1, Ordering::Release);
            }
            locked.clear();
            Ok(())
        })();

        // Unlock anything still held after a failure, restoring the
        // original header words.
        for (obj, original) in locked {
            heap.header_atomic(obj).store(original, Ordering::Release);
        }
        match result {
            Ok(()) => {
                self.wstm.commits.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                self.wstm.aborts.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }
}

fn backoff(attempt: u32) {
    let cap = 1u32 << attempt.min(12);
    let spins = omt_util::rng::thread_rng().gen_range(0..=cap);
    for _ in 0..spins {
        std::hint::spin_loop();
    }
    if attempt > 8 {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_heap::ClassDesc;

    fn setup() -> (Arc<Heap>, omt_heap::ClassId, WStm) {
        let heap = Arc::new(Heap::new());
        let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["a", "b"]));
        let wstm = WStm::new(heap.clone());
        (heap, class, wstm)
    }

    #[test]
    fn buffered_writes_invisible_until_commit() {
        let (heap, class, wstm) = setup();
        let obj = heap.alloc(class).unwrap();
        let mut tx = wstm.begin();
        tx.write(obj, 0, Word::from_scalar(5));
        assert_eq!(heap.load(obj, 0).as_scalar(), Some(0), "still buffered");
        assert_eq!(tx.read(obj, 0).unwrap().as_scalar(), Some(5), "read own write");
        tx.commit().unwrap();
        assert_eq!(heap.load(obj, 0).as_scalar(), Some(5));
    }

    #[test]
    fn abandoned_transaction_leaves_heap_untouched() {
        let (heap, class, wstm) = setup();
        let obj = heap.alloc(class).unwrap();
        {
            let mut tx = wstm.begin();
            tx.write(obj, 0, Word::from_scalar(9));
        }
        assert_eq!(heap.load(obj, 0).as_scalar(), Some(0));
    }

    #[test]
    fn conflicting_commit_invalidates_reader() {
        let (heap, class, wstm) = setup();
        let obj = heap.alloc(class).unwrap();

        let mut reader = wstm.begin();
        reader.read(obj, 0).unwrap();
        reader.write(obj, 1, Word::from_scalar(1)); // make it a writer so validation runs

        let mut writer = wstm.begin();
        writer.write(obj, 0, Word::from_scalar(1));
        writer.commit().unwrap();

        assert_eq!(reader.commit(), Err(WConflict::Invalid));
    }

    #[test]
    fn read_only_snapshot_is_consistent() {
        let (heap, class, wstm) = setup();
        let obj = heap.alloc(class).unwrap();

        let mut reader = wstm.begin();
        reader.read(obj, 0).unwrap();

        let mut writer = wstm.begin();
        writer.write(obj, 1, Word::from_scalar(7));
        writer.commit().unwrap();

        // A later read by the old snapshot must fail (version advanced).
        assert_eq!(reader.read(obj, 1), Err(WConflict::Invalid));
    }

    #[test]
    fn version_advances_on_commit() {
        let (heap, class, wstm) = setup();
        let obj = heap.alloc(class).unwrap();
        let mut tx = wstm.begin();
        tx.write(obj, 0, Word::from_scalar(1));
        tx.commit().unwrap();
        let h = heap.header_atomic(obj).load(Ordering::Relaxed);
        assert_eq!(h & 1, 0, "unlocked");
        assert_eq!(h >> 1, 1, "version 1");
    }

    #[test]
    fn concurrent_increments_are_serializable() {
        let (heap, class, wstm) = setup();
        let obj = heap.alloc(class).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let wstm = &wstm;
                scope.spawn(move || {
                    for _ in 0..500 {
                        wstm.atomically(|tx| {
                            let v = tx.read(obj, 0)?.as_scalar().unwrap();
                            tx.write(obj, 0, Word::from_scalar(v + 1));
                            Ok(())
                        });
                    }
                });
            }
        });
        assert_eq!(heap.load(obj, 0).as_scalar(), Some(2000));
    }

    #[test]
    fn failed_commit_restores_lock_words() {
        let (heap, class, wstm) = setup();
        let a = heap.alloc(class).unwrap();
        let b = heap.alloc(class).unwrap();

        // tx reads a and writes b; a concurrent commit to a invalidates.
        let mut tx = wstm.begin();
        tx.read(a, 0).unwrap();
        tx.write(b, 0, Word::from_scalar(1));

        let mut other = wstm.begin();
        other.write(a, 0, Word::from_scalar(2));
        other.commit().unwrap();

        assert!(tx.commit().is_err());
        // b's header must be unlocked with its original version (0).
        assert_eq!(heap.header_atomic(b).load(Ordering::Relaxed), 0);
        assert_eq!(heap.load(b, 0).as_scalar(), Some(0));
    }
}
