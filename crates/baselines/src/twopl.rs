//! Per-object two-phase locking ("medium-grained" locking).
//!
//! Generic atomic blocks cannot use hand-crafted fine-grained locking
//! (lock order depends on the block), so the locking analogue of an STM
//! is encounter-time two-phase locking with deadlock recovery: acquire
//! each object's lock at first touch, hold to the end, and on a lock
//! timeout abort — rolling back in-place writes from an undo log — and
//! retry with backoff.
//!
//! The object's header word serves as the lock: `0` = free, otherwise
//! the owner's token.

use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use omt_heap::{Heap, ObjRef, Word};

/// Error: a lock could not be acquired in time (possible deadlock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockBusyError;

impl fmt::Display for LockBusyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "object lock busy (possible deadlock), transaction must retry")
    }
}

impl std::error::Error for LockBusyError {}

/// Counters for the 2PL backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TplStatsSnapshot {
    /// Sections begun.
    pub begins: u64,
    /// Sections committed.
    pub commits: u64,
    /// Aborts due to lock timeouts.
    pub aborts: u64,
}

/// The two-phase-locking backend over a shared heap.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use omt_heap::{Heap, ClassDesc, Word};
/// use omt_baselines::TwoPhaseLocking;
///
/// let heap = Arc::new(Heap::new());
/// let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["v"]));
/// let obj = heap.alloc(class)?;
/// let tpl = TwoPhaseLocking::new(heap.clone());
///
/// tpl.atomically(|tx| {
///     let v = tx.read(obj, 0)?.as_scalar().unwrap();
///     tx.write(obj, 0, Word::from_scalar(v + 1))
/// });
/// assert_eq!(heap.load(obj, 0).as_scalar(), Some(1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct TwoPhaseLocking {
    heap: Arc<Heap>,
    next_token: AtomicU32,
    max_spins: u32,
    begins: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
}

impl TwoPhaseLocking {
    /// Creates a 2PL backend with the default lock-acquire spin budget.
    pub fn new(heap: Arc<Heap>) -> TwoPhaseLocking {
        TwoPhaseLocking::with_spin_budget(heap, 256)
    }

    /// Creates a 2PL backend that spins at most `max_spins` times per
    /// lock acquisition before declaring a deadlock.
    pub fn with_spin_budget(heap: Arc<Heap>, max_spins: u32) -> TwoPhaseLocking {
        TwoPhaseLocking {
            heap,
            next_token: AtomicU32::new(1),
            max_spins,
            begins: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
        }
    }

    /// The underlying heap.
    pub fn heap(&self) -> &Arc<Heap> {
        &self.heap
    }

    /// Begins a locking section.
    pub fn begin(&self) -> TplTx<'_> {
        self.begins.fetch_add(1, Ordering::Relaxed);
        let token = self.next_token.fetch_add(1, Ordering::Relaxed).max(1);
        TplTx { tpl: self, token, held: Vec::new(), undo: Vec::new(), finished: false }
    }

    /// Runs `f` under two-phase locking, retrying on deadlock timeouts.
    pub fn atomically<T>(
        &self,
        mut f: impl FnMut(&mut TplTx<'_>) -> Result<T, LockBusyError>,
    ) -> T {
        let mut attempt = 0u32;
        loop {
            let mut tx = self.begin();
            match f(&mut tx) {
                Ok(v) => {
                    tx.commit();
                    return v;
                }
                Err(LockBusyError) => {
                    tx.abort();
                    attempt = attempt.saturating_add(1);
                    backoff(attempt);
                }
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TplStatsSnapshot {
        TplStatsSnapshot {
            begins: self.begins.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
        }
    }
}

/// An in-flight 2PL section. Dropping without commit aborts.
#[derive(Debug)]
pub struct TplTx<'a> {
    tpl: &'a TwoPhaseLocking,
    token: u32,
    held: Vec<ObjRef>,
    undo: Vec<(ObjRef, u32, u64)>,
    finished: bool,
}

impl TplTx<'_> {
    fn lock_word(token: u32) -> u64 {
        u64::from(token)
    }

    /// Acquires `obj`'s lock (idempotent).
    ///
    /// # Errors
    ///
    /// [`LockBusyError`] if the spin budget is exhausted.
    pub fn acquire(&mut self, obj: ObjRef) -> Result<(), LockBusyError> {
        let header = self.tpl.heap.header_atomic(obj);
        let mine = Self::lock_word(self.token);
        let mut spins = 0;
        loop {
            match header.compare_exchange(0, mine, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    self.held.push(obj);
                    return Ok(());
                }
                Err(current) if current == mine => return Ok(()),
                Err(_) => {
                    if spins >= self.tpl.max_spins {
                        return Err(LockBusyError);
                    }
                    spins += 1;
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Reads a field (locks the object first — 2PL takes exclusive locks
    /// for reads too, as a generic atomic block cannot know whether a
    /// later write will follow).
    ///
    /// # Errors
    ///
    /// [`LockBusyError`] on lock timeout.
    pub fn read(&mut self, obj: ObjRef, field: usize) -> Result<Word, LockBusyError> {
        self.acquire(obj)?;
        Ok(self.tpl.heap.load(obj, field))
    }

    /// Records the current value of `(obj, field)` for rollback.
    ///
    /// The caller must already hold `obj`'s lock (the decomposed-access
    /// path used by the `omt-vm` interpreter acquires via
    /// [`TplTx::acquire`] first).
    pub fn log_undo(&mut self, obj: ObjRef, field: usize) {
        let old = self.tpl.heap.field_atomic(obj, field).load(Ordering::Relaxed);
        self.undo.push((obj, field as u32, old));
    }

    /// Writes a field in place, with undo logging for deadlock aborts.
    ///
    /// # Errors
    ///
    /// [`LockBusyError`] on lock timeout.
    pub fn write(&mut self, obj: ObjRef, field: usize, value: Word) -> Result<(), LockBusyError> {
        self.acquire(obj)?;
        self.log_undo(obj, field);
        self.tpl.heap.store(obj, field, value);
        Ok(())
    }

    /// Commits: releases every lock, keeping the in-place writes.
    pub fn commit(mut self) {
        self.release_all();
        self.tpl.commits.fetch_add(1, Ordering::Relaxed);
        self.finished = true;
    }

    /// Aborts: rolls back writes, then releases every lock.
    pub fn abort(mut self) {
        self.rollback();
        self.tpl.aborts.fetch_add(1, Ordering::Relaxed);
        self.finished = true;
    }

    fn rollback(&mut self) {
        for (obj, field, old) in self.undo.iter().rev() {
            self.tpl.heap.field_atomic(*obj, *field as usize).store(*old, Ordering::Relaxed);
        }
        self.undo.clear();
        self.release_all();
    }

    fn release_all(&mut self) {
        for obj in self.held.drain(..) {
            self.tpl.heap.header_atomic(obj).store(0, Ordering::Release);
        }
    }

    /// Number of locks currently held.
    pub fn locks_held(&self) -> usize {
        self.held.len()
    }
}

impl Drop for TplTx<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.rollback();
            self.tpl.aborts.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn backoff(attempt: u32) {
    let cap = 1u32 << attempt.min(12);
    let spins = omt_util::rng::thread_rng().gen_range(0..=cap);
    for _ in 0..spins {
        std::hint::spin_loop();
    }
    if attempt > 8 {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_heap::ClassDesc;

    fn setup() -> (Arc<Heap>, omt_heap::ClassId, TwoPhaseLocking) {
        let heap = Arc::new(Heap::new());
        let class = heap.define_class(ClassDesc::with_var_fields("Cell", &["v"]));
        let tpl = TwoPhaseLocking::with_spin_budget(heap.clone(), 16);
        (heap, class, tpl)
    }

    #[test]
    fn read_write_commit() {
        let (heap, class, tpl) = setup();
        let obj = heap.alloc(class).unwrap();
        let mut tx = tpl.begin();
        assert_eq!(tx.read(obj, 0).unwrap().as_scalar(), Some(0));
        tx.write(obj, 0, Word::from_scalar(5)).unwrap();
        assert_eq!(tx.locks_held(), 1);
        tx.commit();
        assert_eq!(heap.load(obj, 0).as_scalar(), Some(5));
        // Lock released.
        assert_eq!(heap.header_atomic(obj).load(Ordering::Relaxed), 0);
    }

    #[test]
    fn abort_rolls_back() {
        let (heap, class, tpl) = setup();
        let obj = heap.alloc(class).unwrap();
        let mut tx = tpl.begin();
        tx.write(obj, 0, Word::from_scalar(5)).unwrap();
        tx.abort();
        assert_eq!(heap.load(obj, 0).as_scalar(), Some(0));
        assert_eq!(tpl.stats().aborts, 1);
    }

    #[test]
    fn contended_lock_times_out() {
        let (heap, class, tpl) = setup();
        let obj = heap.alloc(class).unwrap();
        let mut holder = tpl.begin();
        holder.acquire(obj).unwrap();
        let mut waiter = tpl.begin();
        assert_eq!(waiter.read(obj, 0), Err(LockBusyError));
        waiter.abort();
        holder.commit();
    }

    #[test]
    fn drop_releases_locks() {
        let (heap, class, tpl) = setup();
        let obj = heap.alloc(class).unwrap();
        {
            let mut tx = tpl.begin();
            tx.write(obj, 0, Word::from_scalar(9)).unwrap();
        }
        assert_eq!(heap.load(obj, 0).as_scalar(), Some(0), "drop rolled back");
        let mut tx = tpl.begin();
        tx.acquire(obj).unwrap();
        tx.commit();
    }

    #[test]
    fn concurrent_increments_are_serialized() {
        let (heap, class, tpl) = setup();
        let obj = heap.alloc(class).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let tpl = &tpl;
                scope.spawn(move || {
                    for _ in 0..500 {
                        tpl.atomically(|tx| {
                            let v = tx.read(obj, 0)?.as_scalar().unwrap();
                            tx.write(obj, 0, Word::from_scalar(v + 1))
                        });
                    }
                });
            }
        });
        assert_eq!(heap.load(obj, 0).as_scalar(), Some(2000));
    }
}
