//! # omt — *Optimizing Memory Transactions* (PLDI 2006) in Rust
//!
//! A from-scratch reproduction of the direct-access software
//! transactional memory with a decomposed, compiler-optimized barrier
//! interface described in *"Optimizing memory transactions"* (Harris,
//! Plesko, Shinnar, Tarditi — PLDI 2006).
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`util`] | `omt-util` | dependency-free PRNG + sync substrate |
//! | [`heap`] | `omt-heap` | managed object heap + mark-sweep GC substrate |
//! | [`stm`] | `omt-stm` | the direct-access STM (core contribution) |
//! | [`baselines`] | `omt-baselines` | coarse lock, 2PL, TL2-style buffered STM |
//! | [`lang`] | `omt-lang` | TxIL: lexer, parser, type checker |
//! | [`ir`] | `omt-ir` | CFG IR with decomposed STM operations |
//! | [`opt`] | `omt-opt` | the O0–O4 barrier-optimization pipeline |
//! | [`vm`] | `omt-vm` | interpreter over pluggable sync backends |
//! | [`workloads`] | `omt-workloads` | benchmark structures and drivers |
//! | [`server`] | `omt-server` | overload-robust transactional service + open-loop traffic |
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use omt::heap::{Heap, ClassDesc, Word};
//! use omt::stm::Stm;
//!
//! let heap = Arc::new(Heap::new());
//! let account = heap.define_class(ClassDesc::with_var_fields("Account", &["balance"]));
//! let savings = heap.alloc(account)?;
//! let checking = heap.alloc(account)?;
//! heap.store(savings, 0, Word::from_scalar(100));
//!
//! let stm = Stm::new(heap.clone());
//! stm.atomically(|tx| {
//!     let s = tx.read(savings, 0)?.as_scalar().unwrap();
//!     let c = tx.read(checking, 0)?.as_scalar().unwrap();
//!     tx.write(savings, 0, Word::from_scalar(s - 40))?;
//!     tx.write(checking, 0, Word::from_scalar(c + 40))?;
//!     Ok(())
//! });
//! assert_eq!(heap.load(checking, 0).as_scalar(), Some(40));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Or compile a TxIL program and run it under any synchronization
//! backend:
//!
//! ```
//! use std::sync::Arc;
//! use omt::opt::{compile, OptLevel};
//! use omt::vm::{BackendKind, SyncBackend, Vm};
//!
//! let (ir, report) = compile("
//!     class Account { var balance: int; }
//!     fn deposit(a: Account, amount: int) -> int {
//!         atomic { a.balance = a.balance + amount; }
//!         return a.balance;
//!     }
//!     fn main() -> int {
//!         let a = new Account();
//!         return deposit(a, 10) + deposit(a, 5);
//!     }
//! ", OptLevel::O4)?;
//! println!("optimizer: {report}");
//!
//! let heap = Arc::new(omt::heap::Heap::new());
//! let backend = Arc::new(SyncBackend::new(BackendKind::DirectStm, heap.clone()));
//! let vm = Vm::new(Arc::new(ir), heap, backend);
//! assert_eq!(vm.run("main", &[])?.unwrap().as_scalar(), Some(25));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use omt_baselines as baselines;
pub use omt_heap as heap;
pub use omt_ir as ir;
pub use omt_lang as lang;
pub use omt_opt as opt;
pub use omt_server as server;
pub use omt_stm as stm;
pub use omt_util as util;
pub use omt_vm as vm;
pub use omt_workloads as workloads;
