//! A travel-reservation service: multi-structure transactions.
//!
//! Each booking atomically moves a flight, a room, and a car between
//! two search trees *and* updates the customer record — the composite,
//! all-or-nothing operation class that motivates transactional memory
//! (and that hand-rolled fine-grained locking gets wrong first).
//!
//! Run with: `cargo run --release --example travel_booking`

use std::sync::Arc;

use omt::heap::Heap;
use omt::stm::Stm;
use omt::workloads::{run_travel_workload, Resource, TravelSystem};

fn main() {
    let stm = Arc::new(Stm::new(Arc::new(Heap::new())));
    let travel = TravelSystem::new(stm.clone(), 64, 16);

    println!("== 4 threads, 2000 booking/cancel attempts each ==");
    let outcome = run_travel_workload(&travel, 4, 2_000, 7);
    println!("{outcome}");

    for kind in Resource::ALL {
        let (available, booked) = travel.census(kind);
        println!("{kind:?}: {available} available, {booked} booked");
    }
    travel.check_invariants();
    println!("invariants hold: no leg ever leaked, no trip half-booked");

    let stats = stm.stats();
    println!("\nstm: {stats}");
    println!("read filter saved {} log entries across the tree walks", stats.read_filtered);
}
