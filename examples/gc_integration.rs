//! GC integration: transaction logs are known to the collector.
//!
//! A long-running transaction accumulates read-log entries over a large
//! structure that then becomes garbage; the collector (a) keeps alive
//! the old values its undo log could restore, and (b) trims the dead
//! entries out of its logs — the paper's GC/STM contract.
//!
//! Run with: `cargo run --example gc_integration`

use std::sync::Arc;

use omt::heap::{ClassDesc, Heap, RootSet, Word};
use omt::stm::Stm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let heap = Arc::new(Heap::new());
    let node = heap.define_class(ClassDesc::with_var_fields("Node", &["value", "next"]));
    let stm = Stm::new(heap.clone());

    // Build a 10k-node list.
    let mut head = Word::null();
    for i in 0..10_000 {
        let n = heap.alloc(node)?;
        heap.store(n, 0, Word::from_scalar(i));
        heap.store(n, 1, head);
        head = Word::from_ref(n);
    }
    let list_head = head.as_ref().expect("non-empty list");
    println!("built a list: {} live objects", heap.live_objects());

    // A transaction reads the whole list (10k read-log entries) and
    // overwrites one field, then stays open while the list becomes
    // garbage.
    let mut tx = stm.begin();
    let keeper = heap.alloc(node)?;
    heap.store(keeper, 1, Word::from_ref(list_head));
    let mut cursor = Some(list_head);
    let mut sum = 0;
    while let Some(n) = cursor {
        sum += tx.read(n, 0)?.as_scalar().unwrap();
        cursor = tx.read(n, 1)?.as_ref();
    }
    tx.write(keeper, 1, Word::null())?; // undo log now holds the only path to the list
    println!("transaction read the list: sum = {sum}, read set = {}", tx.read_set_size());

    // GC with only `keeper` as a root. The list is reachable *only*
    // through the transaction's undo log (abort would restore the
    // pointer), so nothing may be collected yet.
    let (r, u, n) = stm.registry().total_log_entries();
    println!("before gc: logs hold {r} read, {u} update, {n} undo entries");
    let outcome = heap.collect(&RootSet::from(vec![keeper]), &[stm.gc_participant()]);
    println!("gc #1 (tx active):  {outcome}");
    assert_eq!(outcome.swept, 0, "undo-log old values are roots");

    // Commit: now the unlink is final and the list is garbage.
    tx.commit().expect("no conflicts in this example");
    let outcome = heap.collect(&RootSet::from(vec![keeper]), &[stm.gc_participant()]);
    println!("gc #2 (committed):  {outcome}");
    assert_eq!(outcome.swept, 10_000);

    println!("\nheap: {}", heap.stats().snapshot());
    println!("stm:  trimmed {} log entries at GC time", stm.stats().gc_trimmed_entries);
    Ok(())
}
