//! The paper's headline comparison, in miniature: a hash-table set
//! under a read-heavy mix, run with increasing thread counts on the
//! direct-access STM and on its lock-based competitors.
//!
//! (On a single-core host the curves flatten — the comparison then
//! shows per-operation overhead rather than scalability.)
//!
//! Run with: `cargo run --release --example hashtable_scaling`

use std::sync::Arc;

use omt::heap::Heap;
use omt::stm::Stm;
use omt::workloads::{
    prefill, run_set_workload, CoarseStdSet, ConcurrentSet, HandOverHandList, SetWorkload,
    StmHashSet, StmSortedList, StripedHashSet,
};

fn measure(name: &str, set: &dyn ConcurrentSet, workload: &SetWorkload, threads: &[usize]) {
    print!("{name:<22}");
    for &t in threads {
        let outcome = run_set_workload(set, workload, t);
        print!(" {:>10.0}", outcome.ops_per_second());
    }
    println!();
}

fn main() {
    let threads = [1usize, 2, 4, 8];
    let workload = SetWorkload {
        initial_size: 256,
        key_range: 1024,
        ops_per_thread: 20_000,
        ..SetWorkload::default()
    };

    println!(
        "hash-table set, {} initial keys, {} mix (lookup/insert/remove), ops/s:",
        workload.initial_size, workload.mix
    );
    print!("{:<22}", "impl \\ threads");
    for t in &threads {
        print!(" {t:>10}");
    }
    println!();

    let coarse = CoarseStdSet::new();
    prefill(&coarse, &workload);
    measure("coarse (mutex+btree)", &coarse, &workload, &threads);

    let striped = StripedHashSet::new(64);
    prefill(&striped, &workload);
    measure("fine (striped locks)", &striped, &workload, &threads);

    let stm_set = StmHashSet::new(Arc::new(Stm::new(Arc::new(Heap::new()))), 64);
    prefill(&stm_set, &workload);
    measure("stm (direct-access)", &stm_set, &workload, &threads);

    println!("\nsorted-list set (long transactions), 128 keys:");
    let list_workload = SetWorkload {
        initial_size: 128,
        key_range: 256,
        ops_per_thread: 2_000,
        ..SetWorkload::default()
    };
    print!("{:<22}", "impl \\ threads");
    for t in &threads {
        print!(" {t:>10}");
    }
    println!();

    let hoh = HandOverHandList::new();
    prefill(&hoh, &list_workload);
    measure("fine (lock coupling)", &hoh, &list_workload, &threads);

    let stm_list = StmSortedList::new(Arc::new(Stm::new(Arc::new(Heap::new()))));
    prefill(&stm_list, &list_workload);
    measure("stm (direct-access)", &stm_list, &list_workload, &threads);

    let stats = stm_set.stm().stats();
    println!("\nstm hash-set stats: {stats}");
}
