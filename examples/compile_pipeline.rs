//! The compiler pipeline, end to end: parse a TxIL program, show the IR
//! before and after barrier optimization, and compare *dynamic* barrier
//! counts per optimization level — the paper's central demonstration.
//!
//! Run with: `cargo run --example compile_pipeline`

use std::sync::Arc;

use omt::heap::{Heap, Word};
use omt::opt::{compile, OptLevel};
use omt::vm::{BackendKind, SyncBackend, Vm};

const PROGRAM: &str = "
    class Node { val key: int; var next: Node; }
    class Stats { var lookups: int; var hits: int; }

    fn build(n: int) -> Node {
        let head: Node = null;
        let i = 0;
        while i < n {
            head = new Node(n - i, head);
            i = i + 1;
        }
        return head;
    }

    fn member(list: Node, stats: Stats, key: int) -> bool {
        let found = false;
        atomic {
            stats.lookups = stats.lookups + 1;
            let p = list;
            while p != null && !found {
                if p.key == key { found = true; }
                p = p.next;
            }
            if found { stats.hits = stats.hits + 1; }
        }
        return found;
    }

    fn main(n: int) -> int {
        let list = build(n);
        let stats = new Stats();
        let i = 0;
        while i < n {
            member(list, stats, i * 2);
            i = i + 1;
        }
        return stats.hits;
    }
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("==== TxIL source ====\n{PROGRAM}");

    // Show the transactional clone of `member` before/after optimization.
    for level in [OptLevel::O0, OptLevel::O4] {
        let (ir, report) = compile(PROGRAM, level)?;
        let member = ir.function(ir.function_id("member").expect("member exists"));
        println!("==== IR of `member` at {level} ====");
        println!("{member}");
        println!("pipeline: {report}\n");
    }

    println!("==== dynamic barrier counts, n = 200 ====");
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>14}",
        "level", "open-read", "open-update", "log-undo", "barriers/access"
    );
    for level in OptLevel::ALL {
        let (ir, _) = compile(PROGRAM, level)?;
        let heap = Arc::new(Heap::new());
        let backend = Arc::new(SyncBackend::new(BackendKind::DirectStm, heap.clone()));
        let vm = Vm::new(Arc::new(ir), heap, backend);
        let hits = vm.run("main", &[Word::from_scalar(200)])?.unwrap();
        assert_eq!(hits.as_scalar(), Some(100));
        let c = vm.counters();
        println!(
            "{:<6} {:>12} {:>12} {:>12} {:>14.3}",
            level.to_string(),
            c.open_read,
            c.open_update,
            c.log_undo,
            c.barriers_per_access()
        );
    }
    Ok(())
}
