//! Quickstart: the direct-access STM as a library.
//!
//! Creates a tiny managed heap, runs concurrent transfers between
//! accounts, and prints the STM's statistics — including how many log
//! entries the runtime filter suppressed.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use omt::heap::{ClassDesc, Heap, Word};
use omt::stm::Stm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let heap = Arc::new(Heap::new());
    let account = heap.define_class(ClassDesc::with_var_fields("Account", &["balance"]));

    const ACCOUNTS: usize = 32;
    const INITIAL: i64 = 1_000;
    let accounts: Vec<_> = (0..ACCOUNTS)
        .map(|_| {
            let a = heap.alloc(account)?;
            heap.store(a, 0, Word::from_scalar(INITIAL));
            Ok::<_, omt::heap::HeapFullError>(a)
        })
        .collect::<Result<_, _>>()?;

    let stm = Arc::new(Stm::new(heap.clone()));

    println!("== transferring concurrently on {} accounts ==", ACCOUNTS);
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let stm = stm.clone();
            let accounts = &accounts;
            scope.spawn(move || {
                let mut state = t as u64 + 1;
                for _ in 0..5_000 {
                    // Cheap xorshift for deterministic account picking.
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let from = (state % ACCOUNTS as u64) as usize;
                    let to = ((state >> 8) % ACCOUNTS as u64) as usize;
                    if from == to {
                        continue;
                    }
                    stm.atomically(|tx| {
                        let f = tx.read(accounts[from], 0)?.as_scalar().unwrap();
                        let t = tx.read(accounts[to], 0)?.as_scalar().unwrap();
                        tx.write(accounts[from], 0, Word::from_scalar(f - 5))?;
                        tx.write(accounts[to], 0, Word::from_scalar(t + 5))?;
                        Ok(())
                    });
                }
            });
        }
    });

    // A read-only audit transaction sees a consistent snapshot.
    let total = stm.atomically(|tx| {
        let mut sum = 0;
        for a in &accounts {
            sum += tx.read(*a, 0)?.as_scalar().unwrap();
        }
        Ok(sum)
    });
    println!("total after transfers: {total} (expected {})", ACCOUNTS as i64 * INITIAL);
    assert_eq!(total, ACCOUNTS as i64 * INITIAL);

    println!("\n== STM statistics ==");
    println!("{}", stm.stats());
    println!("\n== heap statistics ==");
    println!("{}", heap.stats().snapshot());
    Ok(())
}
