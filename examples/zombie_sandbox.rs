//! Zombie containment: the managed-runtime sandboxing the paper's
//! direct-update design depends on.
//!
//! A writer keeps two fields equal; a reader divides by their
//! difference plus one. Under direct update with lazy validation, the
//! reader can observe a torn state (a "zombie" transaction) — the
//! division by zero it then hits must be converted into a retry, never
//! surfaced. This example runs the pattern under heavy interleaving
//! and reports how often the sandbox had to intervene.
//!
//! Run with: `cargo run --example zombie_sandbox`

use std::sync::Arc;

use omt::heap::{Heap, Word};
use omt::opt::{compile, OptLevel};
use omt::vm::{run_parallel, BackendKind, SyncBackend, Vm, VmConfig};

const PROGRAM: &str = "
    class Pair { var a: int; var b: int; }
    fn make() -> Pair { return new Pair(); }

    fn writer(p: Pair, rounds: int) -> int {
        let i = 0;
        while i < rounds {
            atomic {
                p.a = p.a + 1;
                p.b = p.b + 1;
            }
            i = i + 1;
        }
        return rounds;
    }

    fn reader(p: Pair, rounds: int) -> int {
        let acc = 0;
        let i = 0;
        while i < rounds {
            atomic {
                // a == b in every committed state, so d is always 1 —
                // unless this transaction is a zombie.
                let d = 1 + p.a - p.b;
                acc = acc + 100 / d;
            }
            i = i + 1;
        }
        return acc;
    }
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (ir, _) = compile(PROGRAM, OptLevel::O2)?;
    let ir = Arc::new(ir);
    let heap = Arc::new(Heap::new());
    let backend = Arc::new(SyncBackend::new(BackendKind::DirectStm, heap.clone()));

    let setup = Vm::new(ir.clone(), heap.clone(), backend.clone());
    let pair = setup.run("make", &[])?.unwrap();

    const ROUNDS: i64 = 20_000;
    let outcome = run_parallel(
        &ir,
        &heap,
        &backend,
        VmConfig { validate_backedges_every: Some(64), ..VmConfig::default() },
        "writer",
        1,
        |_| vec![pair, Word::from_scalar(ROUNDS)],
    )?;
    println!("warmup writer: {} regions committed", outcome.counters.tx_committed);

    // Now race readers against writers.
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..4 {
            let ir = ir.clone();
            let heap = heap.clone();
            let backend = backend.clone();
            handles.push(scope.spawn(move || {
                let vm = Vm::new(ir, heap, backend);
                let entry = if t % 2 == 0 { "writer" } else { "reader" };
                let out = vm.run(entry, &[pair, Word::from_scalar(ROUNDS)]).expect("no trap");
                (entry, out.unwrap().as_scalar().unwrap(), vm.counters())
            }));
        }
        for h in handles {
            let (entry, result, counters) = h.join().unwrap();
            if entry == "reader" {
                assert_eq!(result, ROUNDS * 100, "every committed read saw a == b");
            }
            println!(
                "{entry:<7}: result={result:<10} retries={} back-edge validations={}",
                counters.tx_retries, counters.backedge_validations
            );
        }
    });

    let stm = backend.as_stm().expect("direct backend");
    println!("\nstm stats: {}", stm.stats());
    println!("no reader ever trapped on 100/0: the sandbox converted every zombie into a retry");
    Ok(())
}
